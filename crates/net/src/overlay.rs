//! Stake-weighted gossip overlay: a partial-view dissemination backend.
//!
//! Every protocol in this crate's test fleet historically ran full-mesh:
//! one [`Delivery::Broadcast`](crate::Delivery) effect fanned out to all
//! `n` nodes, `O(n²)` messages per logical round. This module keeps the
//! broadcast effect *symbolic* and expands it into **overlay fanout**
//! instead: each node maintains a small *active view* it eagerly pushes
//! payloads to and a larger *passive view* it repairs from — HyParView's
//! partial-view split — while a Plumtree-style eager/lazy push layer
//! prunes the flood into a spanning tree and recovers missing payloads
//! with IHAVE/GRAFT. Three design points tie the overlay to the Swiper
//! paper's weighted model:
//!
//! * **Stake-weighted peer sampling.** Active-view members, passive
//!   refills and shuffle targets are drawn with
//!   [`WeightedReservoir`](swiper_core::sampling::WeightedReservoir) —
//!   inclusion probability proportional to stake (floored at 1 so
//!   zero-stake parties stay reachable), so heavy parties sit on many
//!   eager paths and are reached early. Weights are refreshed and views
//!   rebuilt at every [`EpochEvent`] boundary (`fold_rekey` reseeds the
//!   sampler deterministically).
//! * **Structural reach.** Every node keeps its ring successor
//!   `(me+1) mod n` in the active view, and ring edges are exempt from
//!   pruning: the directed ring is a subgraph of every eager graph, so a
//!   broadcast reaches 100% of nodes on every seed — the sampled edges
//!   buy *depth* (logarithmic rounds), the ring buys *certainty*.
//! * **Churn feeds epochs.** SWIM-style probing (ping, suspect on
//!   timeout, confirm after a grace period) records confirmed failures
//!   and observed joins into a shared [`ChurnLedger`], which renders them
//!   as a *candidate weight snapshot* — input for the Reconfigurator's
//!   solver pass, composing with the epoch machinery instead of mutating
//!   membership behind its back.
//!
//! The overlay is itself a [`Protocol`] (over [`OverlayMsg`]), so it runs
//! unchanged on both substrates — the deterministic simulator and the
//! threaded runtime over channel or socket transports — and satisfies the
//! determinism-twin contract: all randomness comes from a seeded
//! [`SplitMix64`], every emission is a pure function of the callback
//! sequence, and shared stats/ledger handles are observational only.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use swiper_core::sampling::{SplitMix64, WeightedReservoir};
use swiper_core::{EpochEvent, Weights};

use crate::codec::{put_slice, put_u32, WireCodec, WireError, WireReader};
use crate::sim::{Context, NodeId, Protocol};
use crate::transport::Delivery;
use crate::MessageSize;

/// Overlay timers live above bit 63; inner-protocol timer ids must stay
/// below it.
const OVERLAY_TIMER_BIT: u64 = 1 << 63;
/// Timer kind field (bits 60..=62).
const KIND_SHIFT: u64 = 60;
const KIND_GRAFT: u64 = 0;
const KIND_PROBE_TICK: u64 = 1;
const KIND_PROBE_TIMEOUT: u64 = 2;
const KIND_CONFIRM: u64 = 3;
const KIND_SHUFFLE: u64 = 4;
/// Payload mask (bits 0..60).
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

fn overlay_timer(kind: u64, payload: u64) -> u64 {
    debug_assert!(payload <= PAYLOAD_MASK);
    OVERLAY_TIMER_BIT | (kind << KIND_SHIFT) | payload
}

fn graft_timer(origin: u32, seq: u32) -> u64 {
    debug_assert!(origin < (1 << 28) && seq < (1 << 28));
    overlay_timer(KIND_GRAFT, (u64::from(origin) << 28) | u64::from(seq))
}

/// Messages of the overlay layer. `M` is the wrapped protocol's message
/// type, carried opaquely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayMsg<M> {
    /// Eager push: the payload itself, tagged with its origin's id, the
    /// origin's broadcast sequence number, and the hop count so far.
    Eager {
        /// Originating node (the logical broadcaster).
        origin: u32,
        /// Origin's per-node broadcast counter.
        seq: u32,
        /// Hops travelled from the origin (0 = the origin's own copy).
        hops: u32,
        /// The wrapped protocol's message.
        payload: M,
    },
    /// Lazy push: "I have payload `(origin, seq)`" — sent to lazy peers
    /// so they can graft if their eager paths failed.
    IHave {
        /// Originating node of the announced payload.
        origin: u32,
        /// Origin's broadcast counter for the announced payload.
        seq: u32,
    },
    /// Pull request for an announced payload the sender never received
    /// eagerly; also promotes the link back to eager (tree repair).
    Graft {
        /// Originating node of the wanted payload.
        origin: u32,
        /// Origin's broadcast counter for the wanted payload.
        seq: u32,
    },
    /// "Stop eager-pushing to me on this link" — the sender saw a
    /// duplicate; the link demotes to lazy.
    Prune,
    /// A point-to-point message of the wrapped protocol (inner unicasts
    /// bypass gossip).
    Direct(M),
    /// Membership: announce presence to a peer.
    Join,
    /// Membership: a Join recipient's active-view snapshot, for the
    /// joiner's passive view.
    JoinReply {
        /// The replier's current active view.
        peers: Vec<u32>,
    },
    /// Membership: periodic passive-view exchange (sender's sample).
    Shuffle {
        /// Sampled peers the sender offers.
        peers: Vec<u32>,
    },
    /// Membership: the reply sample of a shuffle.
    ShuffleReply {
        /// Sampled peers the replier offers back.
        peers: Vec<u32>,
    },
    /// Failure detection: liveness probe.
    Ping {
        /// Correlates the probe with its pong and timers.
        nonce: u32,
    },
    /// Failure detection: probe answer.
    Pong {
        /// The probe's nonce, echoed.
        nonce: u32,
    },
    /// Membership: the sender evicted this link from its active view.
    Disconnect,
}

impl<M: MessageSize> MessageSize for OverlayMsg<M> {
    fn size_bytes(&self) -> usize {
        match self {
            OverlayMsg::Eager { payload, .. } => 1 + 12 + payload.size_bytes(),
            OverlayMsg::IHave { .. } | OverlayMsg::Graft { .. } => 1 + 8,
            OverlayMsg::Prune | OverlayMsg::Join | OverlayMsg::Disconnect => 1,
            OverlayMsg::Direct(m) => 1 + m.size_bytes(),
            OverlayMsg::JoinReply { peers }
            | OverlayMsg::Shuffle { peers }
            | OverlayMsg::ShuffleReply { peers } => 1 + 4 + 4 * peers.len(),
            OverlayMsg::Ping { .. } | OverlayMsg::Pong { .. } => 1 + 4,
        }
    }
}

/// Tuning knobs of the overlay. `0` on the degree fields means
/// "derive from `n`": active degree `max(3, ⌈log₂ n⌉) + 1` (the +1 is the
/// ring successor), passive degree four times that. The failure-detection
/// and shuffle schedules are *bounded-round* — a fixed number of probe and
/// shuffle rounds per run, so runs quiesce instead of ticking forever.
#[derive(Debug, Clone)]
pub struct OverlayConfig {
    /// Active-view size (0 = auto).
    pub active_degree: usize,
    /// Passive-view size (0 = auto).
    pub passive_degree: usize,
    /// How many lazy peers receive an IHAVE per first receipt.
    pub lazy_fanout: usize,
    /// Ticks to wait for an eager copy after an IHAVE before grafting.
    pub graft_timeout: u64,
    /// How many graft attempts (rotating providers) before giving up.
    pub graft_retries: u32,
    /// Total liveness probes each node sends per run (0 disables).
    pub probe_rounds: u32,
    /// Ticks between probes.
    pub probe_period: u64,
    /// Ticks before an unanswered probe marks its target suspected.
    pub probe_timeout: u64,
    /// Further ticks before a suspected peer is confirmed failed.
    pub confirm_timeout: u64,
    /// Total shuffle exchanges each node initiates per run (0 disables).
    pub shuffle_rounds: u32,
    /// Ticks between shuffles.
    pub shuffle_period: u64,
    /// Peers carried per shuffle message.
    pub shuffle_size: usize,
    /// When false, duplicate receipts never demote eager links: every
    /// active edge stays eager forever and the overlay degenerates into
    /// reliable flooding. The benchmark harness runs its `fullmesh`
    /// yardstick with this off (and `active_degree: n - 1`) so the
    /// n²-flood baseline is *measured* through the same code path the
    /// overlay uses, not assumed.
    pub prune: bool,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        OverlayConfig {
            active_degree: 0,
            passive_degree: 0,
            lazy_fanout: 2,
            graft_timeout: 40,
            graft_retries: 3,
            probe_rounds: 2,
            probe_period: 25,
            probe_timeout: 30,
            confirm_timeout: 60,
            shuffle_rounds: 1,
            shuffle_period: 50,
            shuffle_size: 6,
            prune: true,
        }
    }
}

impl OverlayConfig {
    /// Multiplies every timer field by `f`. The defaults are sized for
    /// the simulator's abstract ticks (delays of 1..=20); on
    /// [`crate::ThreadedRuntime`] the clock is *microseconds*, so runs
    /// there should scale timers up (e.g. `scaled_by(500)`) or probes
    /// time out before a pong can cross a real scheduler.
    #[must_use]
    pub fn scaled_by(mut self, f: u64) -> Self {
        self.graft_timeout *= f;
        self.probe_period *= f;
        self.probe_timeout *= f;
        self.confirm_timeout *= f;
        self.shuffle_period *= f;
        self
    }

    fn active_for(&self, n: usize) -> usize {
        let auto = || {
            let log = usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1;
            (log as usize).max(3) + 1
        };
        let d = if self.active_degree == 0 { auto() } else { self.active_degree };
        d.min(n.saturating_sub(1))
    }

    fn passive_for(&self, n: usize) -> usize {
        let d =
            if self.passive_degree == 0 { self.active_for(n) * 4 } else { self.passive_degree };
        d.min(n.saturating_sub(1))
    }
}

/// Shared counters describing one overlay run: dissemination shape
/// (deliveries, hop radius), repair activity (prunes, IHAVEs, grafts),
/// membership/failure-detection activity, and view degree. Observational
/// only — recording never influences an emission, which is what keeps a
/// stats-sharing run twin-replayable.
#[derive(Debug, Default, Clone)]
pub struct OverlayStats {
    /// Logical broadcasts turned into gossip originations.
    pub broadcasts: u64,
    /// First receipts handed to inner protocols (one per node reached).
    pub deliveries: u64,
    /// Maximum hop count over all first receipts (rounds to full
    /// delivery).
    pub max_hops: u32,
    /// Prune messages sent (tree convergence).
    pub prunes: u64,
    /// IHAVE announcements sent to lazy peers.
    pub ihaves: u64,
    /// Graft pulls sent (recovery activity).
    pub grafts: u64,
    /// Probes that timed out into suspicion.
    pub suspects: u64,
    /// Suspicions that hardened into confirmed failures.
    pub confirmed_failures: u64,
    /// Join messages processed.
    pub joins: u64,
    /// Shuffle exchanges processed (requests + replies).
    pub shuffles: u64,
    /// Sum of active-view sizes at view-build time…
    pub degree_sum: u64,
    /// …over this many node-builds (mean degree = sum / builds).
    pub degree_builds: u64,
}

impl OverlayStats {
    /// Mean active-view degree over every view build of the run.
    #[must_use]
    pub fn mean_degree(&self) -> f64 {
        if self.degree_builds == 0 {
            0.0
        } else {
            self.degree_sum as f64 / self.degree_builds as f64
        }
    }
}

/// One churn observation made by the overlay's failure detector or
/// membership layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A probed peer never answered through suspicion and grace — the
    /// observer considers it failed.
    ConfirmedFailure {
        /// The node that ran the probe.
        observer: NodeId,
        /// The peer it confirmed failed.
        peer: NodeId,
    },
    /// A Join was processed — the joiner is alive and reachable.
    Join {
        /// The node that processed the join.
        observer: NodeId,
        /// The joining peer.
        peer: NodeId,
    },
}

/// Shared record of churn the overlay detected, and its bridge into the
/// epoch machinery: [`ChurnLedger::candidate_weights`] renders confirmed
/// failures as a zeroed-stake candidate snapshot, which callers hand to
/// the Reconfigurator (`swiper-weights`) — churn *feeds* epochs, it never
/// mutates membership directly.
#[derive(Debug, Default)]
pub struct ChurnLedger {
    events: Vec<ChurnEvent>,
}

impl ChurnLedger {
    /// A fresh, empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// All recorded events, in record order.
    #[must_use]
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    fn record(&mut self, ev: ChurnEvent) {
        self.events.push(ev);
    }

    /// Peers confirmed failed by at least `quorum` distinct observers.
    #[must_use]
    pub fn confirmed_by(&self, quorum: usize) -> BTreeSet<NodeId> {
        let mut observers: BTreeMap<NodeId, BTreeSet<NodeId>> = BTreeMap::new();
        for ev in &self.events {
            if let ChurnEvent::ConfirmedFailure { observer, peer } = *ev {
                observers.entry(peer).or_default().insert(observer);
            }
        }
        observers.into_iter().filter(|(_, o)| o.len() >= quorum).map(|(p, _)| p).collect()
    }

    /// The candidate weight snapshot implied by detected churn: `base`
    /// with every quorum-confirmed failure's stake zeroed. `None` when
    /// nothing was confirmed (no epoch warranted) or when zeroing would
    /// erase all stake (an all-failed snapshot cannot parameterize a
    /// solver pass).
    #[must_use]
    pub fn candidate_weights(&self, base: &Weights, quorum: usize) -> Option<Weights> {
        let failed = self.confirmed_by(quorum);
        if failed.is_empty() {
            return None;
        }
        let snapshot: Vec<u64> = base
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &w)| if failed.contains(&i) { 0 } else { w })
            .collect();
        Weights::new(snapshot).ok()
    }
}

/// Pending recovery state for one announced-but-unreceived payload.
#[derive(Debug, Default)]
struct GraftState {
    providers: Vec<NodeId>,
    next_provider: usize,
    retries: u32,
}

/// A [`Protocol`] adapter that runs `inner` over the gossip overlay: the
/// inner automaton's symbolic broadcasts become eager-push originations,
/// its unicasts travel as [`OverlayMsg::Direct`], and everything else —
/// membership, failure detection, tree repair — is the overlay's own
/// traffic. See the module docs for the design.
pub struct OverlayNode<M: Clone + MessageSize> {
    inner: Box<dyn Protocol<Msg = M> + Send>,
    inner_halted: bool,
    cfg: OverlayConfig,
    weights: Weights,
    seed: u64,
    rng: SplitMix64,
    me: NodeId,
    n: usize,
    started: bool,
    // Views. Invariant: eager ∪ lazy = active, disjoint; passive is
    // disjoint from active and never contains `me`.
    active: BTreeSet<NodeId>,
    eager: BTreeSet<NodeId>,
    lazy: BTreeSet<NodeId>,
    passive: BTreeSet<NodeId>,
    // Dissemination state.
    next_seq: u32,
    seen: BTreeMap<(u32, u32), (M, u32)>,
    graft_pending: BTreeMap<(u32, u32), GraftState>,
    // Failure detection.
    next_nonce: u32,
    probes_sent: u32,
    probe_cursor: usize,
    outstanding: BTreeMap<u32, NodeId>,
    suspected: BTreeSet<NodeId>,
    shuffles_sent: u32,
    // Observation (never influences emissions).
    stats: Option<Arc<Mutex<OverlayStats>>>,
    ledger: Option<Arc<Mutex<ChurnLedger>>>,
}

impl<M: Clone + MessageSize> OverlayNode<M> {
    /// Wraps `inner` for overlay dissemination. `weights` is the stake
    /// vector driving peer sampling (length must cover the population),
    /// `seed` the per-run sampling seed — combined with the node id at
    /// start, so replicas with the same construction draw identical
    /// views.
    pub fn new(
        inner: Box<dyn Protocol<Msg = M> + Send>,
        weights: Weights,
        cfg: OverlayConfig,
        seed: u64,
    ) -> Self {
        OverlayNode {
            inner,
            inner_halted: false,
            cfg,
            weights,
            seed,
            rng: SplitMix64::new(seed),
            me: 0,
            n: 0,
            started: false,
            active: BTreeSet::new(),
            eager: BTreeSet::new(),
            lazy: BTreeSet::new(),
            passive: BTreeSet::new(),
            next_seq: 0,
            seen: BTreeMap::new(),
            graft_pending: BTreeMap::new(),
            next_nonce: 0,
            probes_sent: 0,
            probe_cursor: 0,
            outstanding: BTreeMap::new(),
            suspected: BTreeSet::new(),
            shuffles_sent: 0,
            stats: None,
            ledger: None,
        }
    }

    /// Shares a stats sink; recording is observational only.
    #[must_use]
    pub fn with_stats(mut self, stats: Arc<Mutex<OverlayStats>>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Shares a churn ledger; recording is observational only.
    #[must_use]
    pub fn with_churn_ledger(mut self, ledger: Arc<Mutex<ChurnLedger>>) -> Self {
        self.ledger = Some(ledger);
        self
    }

    fn stat(&self, f: impl FnOnce(&mut OverlayStats)) {
        if let Some(s) = &self.stats {
            f(&mut s.lock().expect("stats poisoned"));
        }
    }

    fn churn(&self, ev: ChurnEvent) {
        if let Some(l) = &self.ledger {
            l.lock().expect("ledger poisoned").record(ev);
        }
    }

    fn ring_succ(&self) -> NodeId {
        (self.me + 1) % self.n.max(1)
    }

    fn ring_pred(&self) -> NodeId {
        (self.me + self.n - 1) % self.n.max(1)
    }

    /// Stake floored at 1: zero-stake parties must stay reachable.
    fn floored_weights(&self) -> Vec<u64> {
        let mut w: Vec<u64> = self.weights.as_slice().iter().map(|&w| w.max(1)).collect();
        w.resize(self.n, 1);
        w
    }

    /// (Re)draws both views from the current weights: ring successor
    /// pinned into active, the rest stake-sampled; eager restarts as the
    /// whole active view (pruning re-converges the tree).
    fn build_views(&mut self) {
        self.active.clear();
        self.passive.clear();
        if self.n > 1 {
            self.active.insert(self.ring_succ());
        }
        let floored = self.floored_weights();
        let me = self.me;
        let want_active = self.cfg.active_for(self.n);
        if want_active > self.active.len() {
            let succ = self.ring_succ();
            let extra = WeightedReservoir::sample_indices(
                &floored,
                want_active - self.active.len(),
                &mut self.rng,
                |i| i == me || i == succ,
            );
            self.active.extend(extra);
        }
        let want_passive = self.cfg.passive_for(self.n);
        if want_passive > 0 {
            let active = self.active.clone();
            let passive =
                WeightedReservoir::sample_indices(&floored, want_passive, &mut self.rng, |i| {
                    i == me || active.contains(&i)
                });
            self.passive.extend(passive);
        }
        self.eager = self.active.clone();
        self.lazy.clear();
        let degree = self.active.len() as u64;
        self.stat(|s| {
            s.degree_sum += degree;
            s.degree_builds += 1;
        });
    }

    /// Evicts down to the configured active degree after a graft or
    /// promotion grew the view: lightest stake leaves first (ties to the
    /// higher id), the ring successor never leaves, and the evictee is
    /// told via [`OverlayMsg::Disconnect`].
    fn enforce_active_cap(&mut self, ctx: &mut Context<OverlayMsg<M>>) {
        let cap = self.cfg.active_for(self.n).max(1);
        let floored = self.floored_weights();
        while self.active.len() > cap {
            let succ = self.ring_succ();
            let victim =
                self.active.iter().copied().filter(|&p| p != succ).min_by_key(|&p| {
                    (floored.get(p).copied().unwrap_or(1), std::cmp::Reverse(p))
                });
            let Some(victim) = victim else { break };
            self.demote_to_passive(victim);
            ctx.send(victim, OverlayMsg::Disconnect);
        }
    }

    fn demote_to_passive(&mut self, peer: NodeId) {
        self.active.remove(&peer);
        self.eager.remove(&peer);
        self.lazy.remove(&peer);
        if peer != self.me {
            self.passive.insert(peer);
        }
    }

    /// Removes a confirmed-failed peer everywhere and promotes a
    /// stake-sampled replacement from the passive view. The ring
    /// successor is exempt: that edge is the structural reach guarantee,
    /// and a false-positive confirmation (slow scheduler, lossy link)
    /// must never sever it — the confirmation is still recorded in the
    /// churn ledger, where the epoch machinery decides its fate.
    fn replace_failed(&mut self, peer: NodeId) {
        if peer == self.ring_succ() {
            return;
        }
        self.active.remove(&peer);
        self.eager.remove(&peer);
        self.lazy.remove(&peer);
        self.passive.remove(&peer);
        let floored = self.floored_weights();
        let passive = self.passive.clone();
        let promoted = WeightedReservoir::sample_indices(&floored, 1, &mut self.rng, |i| {
            !passive.contains(&i)
        });
        if let Some(&p) = promoted.first() {
            self.passive.remove(&p);
            self.active.insert(p);
            self.eager.insert(p);
        }
    }

    /// Runs one inner callback on a detached context and translates its
    /// effects: unicasts wrap as [`OverlayMsg::Direct`], each symbolic
    /// broadcast becomes a self-addressed origination (the first-receipt
    /// path then delivers locally and fans out), timers pass through
    /// (inner ids must stay below the overlay's bit-63 namespace), output
    /// forwards, and a halt quiets the inner automaton *without* halting
    /// the overlay — a node that stopped caring about payloads still
    /// relays, serves grafts and answers probes.
    fn drive_inner(
        &mut self,
        ctx: &mut Context<OverlayMsg<M>>,
        f: impl FnOnce(&mut dyn Protocol<Msg = M>, &mut Context<M>),
    ) {
        if self.inner_halted {
            return;
        }
        let mut ictx = Context::detached(ctx.me(), ctx.n(), ctx.now());
        f(self.inner.as_mut(), &mut ictx);
        for delivery in std::mem::take(&mut ictx.outbox) {
            match delivery {
                Delivery::Unicast(to, m) => ctx.send(to, OverlayMsg::Direct(m)),
                Delivery::Broadcast(m) => {
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    self.stat(|s| s.broadcasts += 1);
                    ctx.send(
                        self.me,
                        OverlayMsg::Eager { origin: self.me as u32, seq, hops: 0, payload: m },
                    );
                }
            }
        }
        for (delay, id) in std::mem::take(&mut ictx.timers) {
            debug_assert!(id < OVERLAY_TIMER_BIT, "inner timer id collides with overlay bits");
            ctx.set_timer(delay, id);
        }
        if let Some(out) = ictx.output.take() {
            ctx.output(out);
        }
        if ictx.halted {
            self.inner_halted = true;
        }
    }

    fn on_eager(
        &mut self,
        from: NodeId,
        origin: u32,
        seq: u32,
        hops: u32,
        payload: M,
        ctx: &mut Context<OverlayMsg<M>>,
    ) {
        let key = (origin, seq);
        if self.seen.contains_key(&key) {
            // Duplicate: this eager link is redundant — demote it, unless
            // it is a ring edge or our own origination echo. Both ring
            // directions are exempt: demoting the predecessor would stop
            // *it* being pushed to on the way back, and demoting the
            // successor severs the outgoing edge the reach guarantee is
            // built on (every node always pushes to `(me + 1) % n`).
            if self.cfg.prune
                && from != self.me
                && from != self.ring_pred()
                && from != self.ring_succ()
                && self.eager.remove(&from)
            {
                self.lazy.insert(from);
                ctx.send(from, OverlayMsg::Prune);
                self.stat(|s| s.prunes += 1);
            }
            return;
        }
        self.seen.insert(key, (payload.clone(), hops));
        self.graft_pending.remove(&key);
        self.stat(|s| {
            s.deliveries += 1;
            s.max_hops = s.max_hops.max(hops);
        });
        // First receipt: hand to the inner automaton as a message *from
        // the origin* — over full mesh the broadcaster is the sender, and
        // quorum protocols key votes by that id.
        let inner_payload = payload.clone();
        self.drive_inner(ctx, |inner, ictx| {
            inner.on_message(origin as NodeId, inner_payload, ictx);
        });
        // Eager fanout: everyone on an eager link except where it came
        // from and who started it.
        for &p in self.eager.clone().iter() {
            if p != from && p != self.me && p as u32 != origin {
                ctx.send(
                    p,
                    OverlayMsg::Eager { origin, seq, hops: hops + 1, payload: payload.clone() },
                );
            }
        }
        // Lazy announcements: a rotating lazy_fanout-slice of the lazy
        // view (deterministic rotation — no rng, so replicas agree).
        if self.cfg.lazy_fanout > 0 && !self.lazy.is_empty() {
            let lazy: Vec<NodeId> = self.lazy.iter().copied().collect();
            let start = (origin as usize + seq as usize) % lazy.len();
            for off in 0..self.cfg.lazy_fanout.min(lazy.len()) {
                let p = lazy[(start + off) % lazy.len()];
                ctx.send(p, OverlayMsg::IHave { origin, seq });
                self.stat(|s| s.ihaves += 1);
            }
        }
    }

    fn on_ihave(
        &mut self,
        from: NodeId,
        origin: u32,
        seq: u32,
        ctx: &mut Context<OverlayMsg<M>>,
    ) {
        let key = (origin, seq);
        if self.seen.contains_key(&key) {
            return;
        }
        let state = self.graft_pending.entry(key).or_default();
        let fresh = state.providers.is_empty();
        if !state.providers.contains(&from) {
            state.providers.push(from);
        }
        if fresh {
            ctx.set_timer(self.cfg.graft_timeout, graft_timer(origin, seq));
        }
    }

    fn on_graft_timer(&mut self, origin: u32, seq: u32, ctx: &mut Context<OverlayMsg<M>>) {
        let key = (origin, seq);
        if self.seen.contains_key(&key) {
            return;
        }
        let Some(state) = self.graft_pending.get_mut(&key) else { return };
        if state.retries >= self.cfg.graft_retries || state.providers.is_empty() {
            return;
        }
        let provider = state.providers[state.next_provider % state.providers.len()];
        state.next_provider += 1;
        state.retries += 1;
        ctx.send(provider, OverlayMsg::Graft { origin, seq });
        self.stat(|s| s.grafts += 1);
        // Tree repair: the provider becomes an eager neighbour.
        self.lazy.remove(&provider);
        self.passive.remove(&provider);
        self.active.insert(provider);
        self.eager.insert(provider);
        self.enforce_active_cap(ctx);
        ctx.set_timer(self.cfg.graft_timeout, graft_timer(origin, seq));
    }

    fn on_probe_tick(&mut self, ctx: &mut Context<OverlayMsg<M>>) {
        if self.probes_sent >= self.cfg.probe_rounds || self.active.is_empty() {
            return;
        }
        let peers: Vec<NodeId> = self.active.iter().copied().collect();
        let target = peers[self.probe_cursor % peers.len()];
        self.probe_cursor += 1;
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.outstanding.insert(nonce, target);
        ctx.send(target, OverlayMsg::Ping { nonce });
        ctx.set_timer(
            self.cfg.probe_timeout,
            overlay_timer(KIND_PROBE_TIMEOUT, u64::from(nonce)),
        );
        self.probes_sent += 1;
        if self.probes_sent < self.cfg.probe_rounds {
            ctx.set_timer(self.cfg.probe_period, overlay_timer(KIND_PROBE_TICK, 0));
        }
    }

    fn on_shuffle_tick(&mut self, ctx: &mut Context<OverlayMsg<M>>) {
        if self.shuffles_sent >= self.cfg.shuffle_rounds || self.active.is_empty() {
            return;
        }
        self.shuffles_sent += 1;
        let floored = self.floored_weights();
        let active = self.active.clone();
        let target = WeightedReservoir::sample_indices(&floored, 1, &mut self.rng, |i| {
            !active.contains(&i)
        });
        let Some(&target) = target.first() else { return };
        let peers = self.shuffle_sample(target);
        ctx.send(target, OverlayMsg::Shuffle { peers });
        if self.shuffles_sent < self.cfg.shuffle_rounds {
            ctx.set_timer(self.cfg.shuffle_period, overlay_timer(KIND_SHUFFLE, 0));
        }
    }

    /// Up to `shuffle_size` known peers (active first, then passive),
    /// excluding the exchange partner, plus ourselves.
    fn shuffle_sample(&self, partner: NodeId) -> Vec<u32> {
        let mut peers: Vec<u32> = vec![self.me as u32];
        for &p in self.active.iter().chain(self.passive.iter()) {
            if peers.len() > self.cfg.shuffle_size {
                break;
            }
            if p != partner && p != self.me {
                peers.push(p as u32);
            }
        }
        peers
    }

    /// Folds received peer addresses into the passive view (never the
    /// active view — promotion happens via grafts or failure
    /// replacement), evicting the highest ids beyond capacity.
    fn merge_passive(&mut self, peers: &[u32]) {
        for &p in peers {
            let p = p as usize;
            if p < self.n && p != self.me && !self.active.contains(&p) {
                self.passive.insert(p);
            }
        }
        let cap = self.cfg.passive_for(self.n).max(1);
        while self.passive.len() > cap {
            let last = *self.passive.iter().next_back().expect("nonempty");
            self.passive.remove(&last);
        }
    }
}

impl<M: Clone + MessageSize> Protocol for OverlayNode<M> {
    type Msg = OverlayMsg<M>;

    fn on_start(&mut self, ctx: &mut Context<OverlayMsg<M>>) {
        self.me = ctx.me();
        self.n = ctx.n();
        self.started = true;
        // Per-node deterministic sampling stream.
        self.rng =
            SplitMix64::new(self.seed ^ (self.me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.build_views();
        // Announce ourselves to one stake-sampled peer (the join path is
        // live on every run, not only under churn).
        if self.n > 1 {
            let floored = self.floored_weights();
            let me = self.me;
            let join =
                WeightedReservoir::sample_indices(&floored, 1, &mut self.rng, |i| i == me);
            if let Some(&p) = join.first() {
                ctx.send(p, OverlayMsg::Join);
            }
        }
        if self.cfg.probe_rounds > 0 && !self.active.is_empty() {
            ctx.set_timer(self.cfg.probe_period, overlay_timer(KIND_PROBE_TICK, 0));
        }
        if self.cfg.shuffle_rounds > 0 && !self.active.is_empty() {
            ctx.set_timer(self.cfg.shuffle_period, overlay_timer(KIND_SHUFFLE, 0));
        }
        self.drive_inner(ctx, |inner, ictx| inner.on_start(ictx));
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: OverlayMsg<M>,
        ctx: &mut Context<OverlayMsg<M>>,
    ) {
        match msg {
            OverlayMsg::Eager { origin, seq, hops, payload } => {
                self.on_eager(from, origin, seq, hops, payload, ctx);
            }
            OverlayMsg::IHave { origin, seq } => self.on_ihave(from, origin, seq, ctx),
            OverlayMsg::Graft { origin, seq } => {
                // The grafting peer wants this link eager again.
                if from != self.me {
                    self.passive.remove(&from);
                    self.lazy.remove(&from);
                    self.active.insert(from);
                    self.eager.insert(from);
                    self.enforce_active_cap(ctx);
                }
                if let Some((payload, hops)) = self.seen.get(&(origin, seq)).cloned() {
                    ctx.send(from, OverlayMsg::Eager { origin, seq, hops: hops + 1, payload });
                }
            }
            OverlayMsg::Prune => {
                if from != self.ring_succ() && self.eager.remove(&from) {
                    self.lazy.insert(from);
                }
            }
            OverlayMsg::Direct(m) => {
                self.drive_inner(ctx, |inner, ictx| inner.on_message(from, m, ictx));
            }
            OverlayMsg::Join => {
                self.stat(|s| s.joins += 1);
                self.churn(ChurnEvent::Join { observer: self.me, peer: from });
                if from != self.me && !self.active.contains(&from) {
                    self.passive.insert(from);
                    self.merge_passive(&[]);
                }
                let peers: Vec<u32> =
                    self.active.iter().map(|&p| p as u32).take(self.cfg.shuffle_size).collect();
                ctx.send(from, OverlayMsg::JoinReply { peers });
            }
            OverlayMsg::JoinReply { peers } => self.merge_passive(&peers),
            OverlayMsg::Shuffle { peers } => {
                self.stat(|s| s.shuffles += 1);
                let reply = self.shuffle_sample(from);
                self.merge_passive(&peers);
                ctx.send(from, OverlayMsg::ShuffleReply { peers: reply });
            }
            OverlayMsg::ShuffleReply { peers } => {
                self.stat(|s| s.shuffles += 1);
                self.merge_passive(&peers);
            }
            OverlayMsg::Ping { nonce } => ctx.send(from, OverlayMsg::Pong { nonce }),
            OverlayMsg::Pong { nonce } => {
                if let Some(peer) = self.outstanding.remove(&nonce) {
                    self.suspected.remove(&peer);
                }
            }
            OverlayMsg::Disconnect => {
                // The ring edge is unilateral: even a successor that
                // evicted us from *its* active view keeps receiving our
                // pushes — that edge is the structural reach guarantee.
                if from != self.ring_succ() {
                    self.demote_to_passive(from);
                }
            }
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<OverlayMsg<M>>) {
        if id & OVERLAY_TIMER_BIT == 0 {
            self.drive_inner(ctx, |inner, ictx| inner.on_timer(id, ictx));
            return;
        }
        let payload = id & PAYLOAD_MASK;
        match (id >> KIND_SHIFT) & 0x7 {
            KIND_GRAFT => {
                let (origin, seq) = ((payload >> 28) as u32, (payload & 0x0FFF_FFFF) as u32);
                self.on_graft_timer(origin, seq, ctx);
            }
            KIND_PROBE_TICK => self.on_probe_tick(ctx),
            KIND_PROBE_TIMEOUT => {
                let nonce = payload as u32;
                if let Some(&peer) = self.outstanding.get(&nonce) {
                    // No pong yet: suspect, and give a grace period.
                    self.suspected.insert(peer);
                    self.stat(|s| s.suspects += 1);
                    ctx.set_timer(
                        self.cfg.confirm_timeout,
                        overlay_timer(KIND_CONFIRM, u64::from(nonce)),
                    );
                }
            }
            KIND_CONFIRM => {
                let nonce = payload as u32;
                if let Some(peer) = self.outstanding.remove(&nonce) {
                    // Still silent through the grace period: confirmed.
                    self.suspected.remove(&peer);
                    self.stat(|s| s.confirmed_failures += 1);
                    self.churn(ChurnEvent::ConfirmedFailure { observer: self.me, peer });
                    self.replace_failed(peer);
                }
            }
            KIND_SHUFFLE => self.on_shuffle_tick(ctx),
            _ => {}
        }
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<OverlayMsg<M>>) {
        // Reweigh-at-boundary: refresh stake, reseed the sampler from the
        // event's rekey material, and rebuild both views so fanout
        // reflects the new weight distribution. A mis-addressed event
        // (length mismatch) is ignored wholesale.
        if event.refresh_weights(&mut self.weights) && self.started {
            self.rng = SplitMix64::new(
                self.seed
                    ^ event.fold_rekey(self.weights.fingerprint())
                    ^ (self.me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            self.build_views();
        }
        self.drive_inner(ctx, |inner, ictx| inner.on_reconfigure(event, ictx));
    }
}

/// [`WireCodec`] for [`OverlayMsg`], generic over the inner payload's
/// codec (`Direct`/`Eager` payloads are length-prefixed inner encodings).
#[derive(Debug, Default, Clone)]
pub struct OverlayCodec<C> {
    inner: C,
}

impl<C> OverlayCodec<C> {
    /// Wraps an inner-payload codec.
    pub fn new(inner: C) -> Self {
        OverlayCodec { inner }
    }
}

const TAG_EAGER: u8 = 0;
const TAG_IHAVE: u8 = 1;
const TAG_GRAFT: u8 = 2;
const TAG_PRUNE: u8 = 3;
const TAG_DIRECT: u8 = 4;
const TAG_JOIN: u8 = 5;
const TAG_JOIN_REPLY: u8 = 6;
const TAG_SHUFFLE: u8 = 7;
const TAG_SHUFFLE_REPLY: u8 = 8;
const TAG_PING: u8 = 9;
const TAG_PONG: u8 = 10;
const TAG_DISCONNECT: u8 = 11;

fn put_peers(out: &mut Vec<u8>, peers: &[u32]) {
    put_u32(out, peers.len() as u32);
    for &p in peers {
        put_u32(out, p);
    }
}

fn take_peers(r: &mut WireReader<'_>) -> Result<Vec<u32>, WireError> {
    let len = r.take_u32()? as usize;
    let mut peers = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        peers.push(r.take_u32()?);
    }
    Ok(peers)
}

impl<M, C> WireCodec<OverlayMsg<M>> for OverlayCodec<C>
where
    M: Send + Sync + 'static,
    C: WireCodec<M>,
{
    fn encode(&self, msg: &OverlayMsg<M>, out: &mut Vec<u8>) {
        match msg {
            OverlayMsg::Eager { origin, seq, hops, payload } => {
                out.push(TAG_EAGER);
                put_u32(out, *origin);
                put_u32(out, *seq);
                put_u32(out, *hops);
                let mut buf = Vec::new();
                self.inner.encode(payload, &mut buf);
                put_slice(out, &buf);
            }
            OverlayMsg::IHave { origin, seq } => {
                out.push(TAG_IHAVE);
                put_u32(out, *origin);
                put_u32(out, *seq);
            }
            OverlayMsg::Graft { origin, seq } => {
                out.push(TAG_GRAFT);
                put_u32(out, *origin);
                put_u32(out, *seq);
            }
            OverlayMsg::Prune => out.push(TAG_PRUNE),
            OverlayMsg::Direct(m) => {
                out.push(TAG_DIRECT);
                let mut buf = Vec::new();
                self.inner.encode(m, &mut buf);
                put_slice(out, &buf);
            }
            OverlayMsg::Join => out.push(TAG_JOIN),
            OverlayMsg::JoinReply { peers } => {
                out.push(TAG_JOIN_REPLY);
                put_peers(out, peers);
            }
            OverlayMsg::Shuffle { peers } => {
                out.push(TAG_SHUFFLE);
                put_peers(out, peers);
            }
            OverlayMsg::ShuffleReply { peers } => {
                out.push(TAG_SHUFFLE_REPLY);
                put_peers(out, peers);
            }
            OverlayMsg::Ping { nonce } => {
                out.push(TAG_PING);
                put_u32(out, *nonce);
            }
            OverlayMsg::Pong { nonce } => {
                out.push(TAG_PONG);
                put_u32(out, *nonce);
            }
            OverlayMsg::Disconnect => out.push(TAG_DISCONNECT),
        }
    }

    fn decode(&self, bytes: &[u8]) -> Result<OverlayMsg<M>, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.take_u8()? {
            TAG_EAGER => {
                let origin = r.take_u32()?;
                let seq = r.take_u32()?;
                let hops = r.take_u32()?;
                let payload = self.inner.decode(r.take_slice()?)?;
                OverlayMsg::Eager { origin, seq, hops, payload }
            }
            TAG_IHAVE => OverlayMsg::IHave { origin: r.take_u32()?, seq: r.take_u32()? },
            TAG_GRAFT => OverlayMsg::Graft { origin: r.take_u32()?, seq: r.take_u32()? },
            TAG_PRUNE => OverlayMsg::Prune,
            TAG_DIRECT => OverlayMsg::Direct(self.inner.decode(r.take_slice()?)?),
            TAG_JOIN => OverlayMsg::Join,
            TAG_JOIN_REPLY => OverlayMsg::JoinReply { peers: take_peers(&mut r)? },
            TAG_SHUFFLE => OverlayMsg::Shuffle { peers: take_peers(&mut r)? },
            TAG_SHUFFLE_REPLY => OverlayMsg::ShuffleReply { peers: take_peers(&mut r)? },
            TAG_PING => OverlayMsg::Ping { nonce: r.take_u32()? },
            TAG_PONG => OverlayMsg::Pong { nonce: r.take_u32()? },
            TAG_DISCONNECT => OverlayMsg::Disconnect,
            tag => return Err(WireError::BadTag(tag)),
        };
        r.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::U64Codec;
    use swiper_core::{TicketAssignment, TicketDelta};

    /// Minimal inner protocol: node 0 broadcasts its value once; every
    /// node outputs the first value it hears.
    struct Flood {
        broadcaster: bool,
    }

    impl Protocol for Flood {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            if self.broadcaster {
                ctx.broadcast(42);
            }
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<u64>) {
            ctx.output(msg.to_le_bytes().to_vec());
        }
    }

    fn overlay_fleet(
        n: usize,
        seed: u64,
        stats: &Arc<Mutex<OverlayStats>>,
    ) -> Vec<Box<dyn Protocol<Msg = OverlayMsg<u64>>>> {
        let weights = Weights::new((1..=n as u64).collect()).unwrap();
        (0..n)
            .map(|i| {
                let node = OverlayNode::new(
                    Box::new(Flood { broadcaster: i == 0 }),
                    weights.clone(),
                    OverlayConfig::default(),
                    seed,
                )
                .with_stats(Arc::clone(stats));
                Box::new(node) as Box<dyn Protocol<Msg = OverlayMsg<u64>>>
            })
            .collect()
    }

    #[test]
    fn overlay_floods_a_broadcast_to_every_node_well_below_full_mesh() {
        for seed in [1, 7, 99] {
            let n = 32;
            let stats = Arc::new(Mutex::new(OverlayStats::default()));
            let report = Simulation::new(overlay_fleet(n, seed, &stats), seed).run();
            for node in 0..n {
                assert_eq!(
                    report.outputs[node].as_deref(),
                    Some(&42u64.to_le_bytes()[..]),
                    "node {node} missed the broadcast (seed {seed})"
                );
            }
            let s = stats.lock().unwrap();
            assert_eq!(s.broadcasts, 1);
            assert_eq!(s.deliveries, n as u64, "reach must be 100%");
            assert!(s.max_hops as usize <= n, "hop count bounded by the ring");
            assert!(
                report.metrics.total_messages() < (n * n) as u64,
                "one gossip broadcast must cost fewer messages than one \
                 full-mesh round: {}",
                report.metrics.total_messages()
            );
        }
    }

    #[test]
    fn duplicate_eager_receipt_prunes_the_redundant_link() {
        let mut node = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![1; 8]).unwrap(),
            OverlayConfig::default(),
            3,
        );
        let mut ctx = Context::detached(0, 8, 0);
        node.on_start(&mut ctx);
        // First copy from the ring successor, duplicate from another peer.
        let eager = |hops| OverlayMsg::Eager { origin: 5, seq: 0, hops, payload: 9u64 };
        let mut ctx = Context::detached(0, 8, 1);
        node.on_message(1, eager(1), &mut ctx);
        let before = node.eager.clone();
        assert!(before.contains(&2) || !node.active.contains(&2), "2 eager iff active");
        node.active.insert(2);
        node.eager.insert(2);
        let mut ctx = Context::detached(0, 8, 2);
        node.on_message(2, eager(3), &mut ctx);
        assert!(!node.eager.contains(&2), "duplicate sender demoted from eager");
        assert!(node.lazy.contains(&2), "…into lazy");
        let sent = ctx.take_staged_expanded(0);
        assert!(
            sent.iter().any(|(to, m)| *to == 2 && *m == OverlayMsg::Prune),
            "a Prune goes back to the duplicate sender"
        );
    }

    #[test]
    fn ihave_without_eager_copy_grafts_from_the_announcer() {
        let mut node = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![1; 8]).unwrap(),
            OverlayConfig::default(),
            3,
        );
        let mut ctx = Context::detached(0, 8, 0);
        node.on_start(&mut ctx);
        let mut ctx = Context::detached(0, 8, 1);
        node.on_message(4, OverlayMsg::IHave { origin: 5, seq: 7 }, &mut ctx);
        let timers = ctx.timers.clone();
        assert_eq!(timers.len(), 1, "one graft timer armed");
        let (_, timer_id) = timers[0];
        assert_eq!(timer_id, graft_timer(5, 7));
        // The eager copy never arrives; the timer fires.
        let mut ctx = Context::detached(0, 8, 50);
        node.on_timer(timer_id, &mut ctx);
        let sent = ctx.take_staged_expanded(0);
        assert!(
            sent.iter().any(|(to, m)| *to == 4
                && matches!(m, OverlayMsg::Graft { origin: 5, seq: 7 })),
            "graft pulled from the announcing peer: {sent:?}"
        );
        assert!(node.eager.contains(&4), "provider promoted to eager for repair");
        // Serving side: a grafted peer gets the cached payload back.
        let mut server = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![1; 8]).unwrap(),
            OverlayConfig::default(),
            3,
        );
        let mut ctx = Context::detached(4, 8, 0);
        server.on_start(&mut ctx);
        let mut ctx = Context::detached(4, 8, 1);
        server.on_message(
            5,
            OverlayMsg::Eager { origin: 5, seq: 7, hops: 0, payload: 11 },
            &mut ctx,
        );
        let mut ctx = Context::detached(4, 8, 2);
        server.on_message(0, OverlayMsg::Graft { origin: 5, seq: 7 }, &mut ctx);
        let sent = ctx.take_staged_expanded(0);
        assert!(
            sent.iter().any(|(to, m)| *to == 0
                && matches!(m, OverlayMsg::Eager { origin: 5, seq: 7, payload: 11, .. })),
            "graft served from the cache: {sent:?}"
        );
    }

    #[test]
    fn reweigh_at_epoch_boundary_rebuilds_views_toward_the_new_whale() {
        let n = 24;
        let mut node = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![1; n]).unwrap(),
            OverlayConfig::default(),
            13,
        );
        let mut ctx = Context::detached(0, n, 0);
        node.on_start(&mut ctx);
        // New stake: party 17 holds essentially everything.
        let mut stake = vec![1u64; n];
        stake[17] = 1_000_000;
        let old = Weights::new(vec![1; n]).unwrap();
        let new = Weights::new(stake).unwrap();
        let delta = TicketDelta::between(
            &TicketAssignment::new(vec![1; n]),
            &TicketAssignment::new(vec![1; n]),
        )
        .unwrap();
        let event = EpochEvent::new(1, delta, &old, new.clone(), 7).unwrap();
        let mut ctx = Context::detached(0, n, 100);
        node.on_reconfigure(&event, &mut ctx);
        assert_eq!(node.weights.as_slice(), new.as_slice(), "stake refreshed");
        assert!(
            node.active.contains(&17),
            "the whale's clipped inclusion probability is 1 — it must be \
             drawn into the rebuilt active view: {:?}",
            node.active
        );
        assert_eq!(node.eager, node.active, "eager resets to the full active view");
        assert!(node.lazy.is_empty());
        // Determinism: an identical twin reconfigured identically agrees.
        let mut twin = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![1; n]).unwrap(),
            OverlayConfig::default(),
            13,
        );
        let mut ctx = Context::detached(0, n, 0);
        twin.on_start(&mut ctx);
        let mut ctx = Context::detached(0, n, 100);
        twin.on_reconfigure(&event, &mut ctx);
        assert_eq!(node.active, twin.active);
        assert_eq!(node.passive, twin.passive);
    }

    #[test]
    fn confirmed_failure_is_recorded_and_renders_a_candidate_snapshot() {
        let n = 8;
        let ledger = Arc::new(Mutex::new(ChurnLedger::new()));
        let mut node = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![10; n]).unwrap(),
            OverlayConfig::default(),
            21,
        )
        .with_churn_ledger(Arc::clone(&ledger));
        let mut ctx = Context::detached(0, n, 0);
        node.on_start(&mut ctx);
        // Round-robin probing starts at the lowest active id — for node 0
        // that is the ring successor, which is eviction-exempt. Probe
        // twice and let the *second* (non-ring) target's timeout and
        // confirmation grace expire with no pong.
        let mut ctx = Context::detached(0, n, 25);
        node.on_timer(overlay_timer(KIND_PROBE_TICK, 0), &mut ctx);
        let first = node.outstanding.get(&0).copied().expect("a probe was sent");
        assert_eq!(first, 1, "the first probe round-robins to the ring successor");
        let mut ctx = Context::detached(0, n, 50);
        node.on_timer(overlay_timer(KIND_PROBE_TICK, 0), &mut ctx);
        let probed = node.outstanding.get(&1).copied().expect("a second probe was sent");
        assert_ne!(probed, 1, "the second probe targets a sampled (non-ring) peer");
        let mut ctx = Context::detached(0, n, 80);
        node.on_timer(overlay_timer(KIND_PROBE_TIMEOUT, 1), &mut ctx);
        assert!(node.suspected.contains(&probed), "silent peer suspected");
        let mut ctx = Context::detached(0, n, 140);
        node.on_timer(overlay_timer(KIND_CONFIRM, 1), &mut ctx);
        assert!(!node.active.contains(&probed), "confirmed peer evicted");
        // The exempt ring successor would survive the same cascade.
        let mut ctx = Context::detached(0, n, 141);
        node.on_timer(overlay_timer(KIND_PROBE_TIMEOUT, 0), &mut ctx);
        let mut ctx = Context::detached(0, n, 201);
        node.on_timer(overlay_timer(KIND_CONFIRM, 0), &mut ctx);
        assert!(node.active.contains(&1), "the ring successor is eviction-exempt");
        let guard = ledger.lock().unwrap();
        assert_eq!(
            guard.events(),
            &[
                ChurnEvent::ConfirmedFailure { observer: 0, peer: probed },
                ChurnEvent::ConfirmedFailure { observer: 0, peer: 1 },
            ],
            "churn recorded for the epoch machinery, ring-exempt or not"
        );
        let base = Weights::new(vec![10; n]).unwrap();
        let candidate = guard.candidate_weights(&base, 1).expect("snapshot");
        assert_eq!(candidate.get(probed), 0, "failed peer's stake zeroed");
        assert_eq!(candidate.get(1), 0, "ring exemption is topological, not epochal");
        assert_eq!(candidate.total(), base.total() - 20);
        // A pong before confirmation cancels the cascade.
        drop(guard);
        let mut fresh = OverlayNode::new(
            Box::new(Flood { broadcaster: false }),
            Weights::new(vec![10; n]).unwrap(),
            OverlayConfig::default(),
            21,
        );
        let mut ctx = Context::detached(0, n, 0);
        fresh.on_start(&mut ctx);
        let mut ctx = Context::detached(0, n, 25);
        fresh.on_timer(overlay_timer(KIND_PROBE_TICK, 0), &mut ctx);
        let target = fresh.outstanding.values().copied().next().unwrap();
        let mut ctx = Context::detached(0, n, 30);
        fresh.on_message(target, OverlayMsg::Pong { nonce: 0 }, &mut ctx);
        let mut ctx = Context::detached(0, n, 55);
        fresh.on_timer(overlay_timer(KIND_PROBE_TIMEOUT, 0), &mut ctx);
        assert!(fresh.suspected.is_empty(), "pong in time clears the probe");
        let mut ctx = Context::detached(0, n, 115);
        fresh.on_timer(overlay_timer(KIND_CONFIRM, 0), &mut ctx);
        assert!(fresh.active.contains(&target), "answered peer stays active");
    }

    #[test]
    fn overlay_codec_round_trips_every_variant() {
        let codec: OverlayCodec<U64Codec> = OverlayCodec::default();
        let msgs: Vec<OverlayMsg<u64>> = vec![
            OverlayMsg::Eager { origin: 3, seq: 9, hops: 2, payload: 0xDEAD_BEEF },
            OverlayMsg::IHave { origin: 1, seq: 2 },
            OverlayMsg::Graft { origin: 4, seq: 5 },
            OverlayMsg::Prune,
            OverlayMsg::Direct(77),
            OverlayMsg::Join,
            OverlayMsg::JoinReply { peers: vec![1, 2, 3] },
            OverlayMsg::Shuffle { peers: vec![] },
            OverlayMsg::ShuffleReply { peers: vec![9] },
            OverlayMsg::Ping { nonce: 11 },
            OverlayMsg::Pong { nonce: 11 },
            OverlayMsg::Disconnect,
        ];
        for msg in msgs {
            let mut bytes = Vec::new();
            codec.encode(&msg, &mut bytes);
            let back = codec.decode(&bytes).unwrap_or_else(|e| panic!("{msg:?}: {e:?}"));
            assert_eq!(back, msg);
            // Trailing garbage must be rejected.
            bytes.push(0);
            assert!(codec.decode(&bytes).is_err(), "{msg:?} accepted trailing bytes");
        }
    }

    #[test]
    fn inner_halt_quiets_the_payload_path_but_not_the_overlay() {
        struct HaltOnFirst;
        impl Protocol for HaltOnFirst {
            type Msg = u64;
            fn on_start(&mut self, _ctx: &mut Context<u64>) {}
            fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut Context<u64>) {
                ctx.output(vec![1]);
                ctx.halt();
            }
        }
        let mut node = OverlayNode::new(
            Box::new(HaltOnFirst),
            Weights::new(vec![1; 4]).unwrap(),
            OverlayConfig::default(),
            5,
        );
        let mut ctx = Context::detached(0, 4, 0);
        node.on_start(&mut ctx);
        let mut ctx = Context::detached(0, 4, 1);
        node.on_message(
            1,
            OverlayMsg::Eager { origin: 1, seq: 0, hops: 1, payload: 8 },
            &mut ctx,
        );
        assert!(node.inner_halted, "inner halt captured");
        assert!(!ctx.halted, "the overlay node itself must keep running");
        // A later graft is still served from the cache.
        let mut ctx = Context::detached(0, 4, 2);
        node.on_message(2, OverlayMsg::Graft { origin: 1, seq: 0 }, &mut ctx);
        let sent = ctx.take_staged_expanded(0);
        assert!(
            sent.iter().any(|(to, m)| *to == 2 && matches!(m, OverlayMsg::Eager { .. })),
            "halted-inner node still serves repairs: {sent:?}"
        );
    }
}
