//! The event-driven simulation core.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swiper_core::EpochEvent;

use crate::adversary::AdaptiveDelay;
use crate::metrics::Metrics;
use crate::transport::{Delivery, Runtime};
use crate::MessageSize;

/// Index of a node in the simulation (`0..n`).
pub type NodeId = usize;

/// Side-effect collector handed to protocol callbacks.
#[derive(Debug)]
pub struct Context<M> {
    node: NodeId,
    n: usize,
    now: u64,
    pub(crate) outbox: Vec<Delivery<M>>,
    pub(crate) timers: Vec<(u64, u64)>,
    pub(crate) output: Option<Vec<u8>>,
    pub(crate) halted: bool,
}

/// Side effects drained from a detached context (used by protocol wrappers
/// that host nested automata, e.g. the black-box transformation's virtual
/// users).
#[derive(Debug)]
pub struct Effects<M> {
    /// Messages to send: `(to, msg)`.
    pub outbox: Vec<(NodeId, M)>,
    /// Timers to set: `(delay, id)`.
    pub timers: Vec<(u64, u64)>,
    /// Protocol output, if produced.
    pub output: Option<Vec<u8>>,
    /// Whether the node halted.
    pub halted: bool,
}

impl<M> Context<M> {
    fn new(node: NodeId, n: usize, now: u64) -> Self {
        Context {
            node,
            n,
            now,
            outbox: Vec::new(),
            timers: Vec::new(),
            output: None,
            halted: false,
        }
    }

    /// Creates a context not owned by a simulation — for wrappers that run
    /// inner automata (black-box virtual users) and route the effects
    /// themselves.
    pub fn detached(node: NodeId, n: usize, now: u64) -> Self {
        Context::new(node, n, now)
    }

    /// Consumes the context, returning its accumulated side effects.
    /// Broadcasts are expanded into per-recipient sends here: a wrapper
    /// hosting nested automata routes each `(to, msg)` pair itself
    /// (typically re-addressing it), so the symbolic form has no consumer
    /// past this point.
    pub fn into_effects(self) -> Effects<M>
    where
        M: Clone,
    {
        let mut outbox = Vec::with_capacity(self.outbox.len());
        for d in self.outbox {
            d.expand_into(self.n, &mut outbox);
        }
        Effects { outbox, timers: self.timers, output: self.output, halted: self.halted }
    }

    /// Drains the staged sends from index `from` on, expanded into
    /// `(to, msg)` pairs (broadcasts become `n` ascending unicasts).
    /// Adversary wrappers use this to filter, record or rewrite a phase's
    /// traffic per recipient before re-staging it.
    pub(crate) fn take_staged_expanded(&mut self, from: usize) -> Vec<(NodeId, M)>
    where
        M: Clone,
    {
        let mut out = Vec::new();
        for d in self.outbox.drain(from..) {
            d.expand_into(self.n, &mut out);
        }
        out
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Sends `msg` to `to` (including to self).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push(Delivery::Unicast(to, msg));
    }

    /// Sends `msg` to every node, including the sender itself (the usual
    /// convention in the BFT literature).
    ///
    /// The broadcast is staged as a single symbolic [`Delivery::Broadcast`]
    /// effect, not `n` eager clones: the backend expands it at flush time
    /// (the threaded runtime with last-send-moves, so a large AVID/ECBC
    /// payload is cloned `n - 1` times at most), and a future gossip
    /// backend can disseminate it without materializing the fan-out.
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push(Delivery::Broadcast(msg));
    }

    /// Schedules `on_timer(id)` after `delay` ticks.
    pub fn set_timer(&mut self, delay: u64, id: u64) {
        self.timers.push((delay, id));
    }

    /// Records this node's protocol output (first write wins).
    pub fn output(&mut self, out: Vec<u8>) {
        if self.output.is_none() {
            self.output = Some(out);
        }
    }

    /// Stops delivering events to this node (graceful local termination).
    pub fn halt(&mut self) {
        self.halted = true;
    }
}

/// A node automaton. Object-safe: simulations mix honest and Byzantine
/// implementations freely.
pub trait Protocol {
    /// The message type exchanged by this protocol family.
    type Msg: Clone + MessageSize;

    /// Invoked once at time zero.
    fn on_start(&mut self, ctx: &mut Context<Self::Msg>);

    /// Invoked on every delivered message.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>);

    /// Invoked when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _id: u64, _ctx: &mut Context<Self::Msg>) {}

    /// Invoked when an epoch reconfiguration reaches this node (see
    /// [`EpochedSimulation`]): the common-knowledge [`EpochEvent`] carries
    /// the epoch's `TicketDelta` **and the new per-party weight vector**
    /// (plus a deterministic rekey seed), and the node should splice the
    /// change into its live state instead of tearing the instance down.
    /// Weights are the live input of a weighted protocol — an event that
    /// renumbered identities but froze stake would be only half a
    /// reconfiguration, so the ticket-only `on_reconfigure(&TicketDelta)`
    /// contract is retired.
    ///
    /// The identity half of the contract is written in terms of **stable
    /// identities** (`swiper_core::StableId`, the `(party, offset)`
    /// coordinate of a virtual user): dense per-epoch indices renumber
    /// whenever a delta touches an earlier party, so nothing a node keeps
    /// across this call — and nothing it ever puts on the wire — may be
    /// keyed by dense index. For implementors:
    ///
    /// * **Keep** all state attached to *surviving* stable identities
    ///   (offsets below their party's new ticket count): sub-instances,
    ///   committed outputs, and accumulated quorum progress. Stable keys
    ///   make survival automatic — there is nothing to re-key.
    /// * **Shed** state attached to *retired* identities: drop their
    ///   sub-instances and pending timers, and *migrate* quorum trackers
    ///   so retired voters' weight is released rather than frozen in
    ///   (`swiper-protocols`' `QuorumTracker::migrate`). Re-derive
    ///   anything computed from the old ticket *totals* (thresholds,
    ///   populations) from the new assignment.
    /// * **Reweigh** weighted tallies under `event.weights()` — partial
    ///   quorums keep their votes but re-derive per-party weights and
    ///   thresholds from the new stake, so a pending tally can *lose*
    ///   ground (a whale's collapse revokes an almost-complete quorum)
    ///   and stale stake can never cross a current-epoch threshold
    ///   (`swiper-protocols`' `WeightQuorum::reweigh`).
    /// * **Re-deal or carry** epoch-pinned cryptographic material: when
    ///   the assignment backing dealt keys moved, re-derive them
    ///   deterministically from `event.rekey_seed()` and the new
    ///   assignment's fingerprint (every replica deals identically); when
    ///   it did not move, carry them — mirroring the SMR composition's
    ///   beacon carry/re-deal split.
    /// * **Spawn** newly added identities mid-flight; they start from
    ///   `on_start` and may rely on vouching/relay paths to catch up.
    /// * Hosts that run nested automata (the black-box wrapper) must
    ///   **propagate** this call to each surviving automaton so it can
    ///   migrate and reweigh its own trackers.
    ///
    /// Under this contract gain-only, shrinking/renumbering *and
    /// stake-drifting* epochs are safe and live — the epoch-crossing seed
    /// sweeps pin all three without carve-outs.
    ///
    /// The default implementation ignores the event, which is correct for
    /// protocols whose configuration embeds neither the assignment nor
    /// the stake.
    fn on_reconfigure(&mut self, _event: &EpochEvent, _ctx: &mut Context<Self::Msg>) {}
}

/// Message delay distribution (the asynchronous adversary's schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[lo, hi]`, drawn from the seeded RNG.
    Uniform(u64, u64),
    /// Uniform in `[lo, hi]`, but messages *from* low ids are maximally
    /// delayed — a crude adversarial schedule that stresses quorum logic.
    BiasAgainstLowIds(u64, u64),
}

impl DelayModel {
    pub(crate) fn sample(&self, rng: &mut StdRng, from: NodeId, n: usize) -> u64 {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform(lo, hi) => rng.random_range(lo..=hi),
            DelayModel::BiasAgainstLowIds(lo, hi) => {
                if from < n / 3 {
                    hi
                } else {
                    rng.random_range(lo..=hi)
                }
            }
        }
    }
}

#[derive(Debug)]
enum Payload<M> {
    Message { from: NodeId, msg: M },
    Timer { id: u64 },
}

#[derive(Debug)]
struct Event<M> {
    time: u64,
    seq: u64,
    to: NodeId,
    payload: Payload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node protocol outputs (None when a node never output).
    pub outputs: Vec<Option<Vec<u8>>>,
    /// Simulated time at quiescence.
    pub elapsed: u64,
    /// Events processed.
    pub events: u64,
    /// Reconfigurations injected (see [`EpochedSimulation`]).
    pub reconfigurations: u64,
    /// Communication counters.
    pub metrics: Metrics,
}

impl RunReport {
    /// Outputs of the given nodes, when all of them produced one.
    pub fn outputs_of(&self, nodes: &[NodeId]) -> Option<Vec<&[u8]>> {
        nodes.iter().map(|&i| self.outputs[i].as_deref()).collect()
    }

    /// Whether no two nodes in `nodes` produced *different* outputs — the
    /// safety half of agreement. Nodes that never output are **ignored**,
    /// not treated as disagreeing: a halted-without-output node has made
    /// no claim to disagree with, and epoch-crossing runs legitimately end
    /// with some nodes (spawned mid-flight, or retired by a delta) never
    /// producing one. Vacuously `true` when nothing was output. Liveness
    /// is a separate assertion — use [`RunReport::unanimity_among`] when
    /// every listed node must both produce and agree.
    pub fn agreement_among(&self, nodes: &[NodeId]) -> bool {
        let mut it = nodes.iter().filter_map(|&i| self.outputs[i].as_ref());
        match it.next() {
            None => true,
            Some(first) => it.all(|o| o == first),
        }
    }

    /// Whether every node in `nodes` produced an output *and* all outputs
    /// are identical — agreement plus liveness in one check.
    pub fn unanimity_among(&self, nodes: &[NodeId]) -> bool {
        nodes.iter().all(|&i| self.outputs[i].is_some()) && self.agreement_among(nodes)
    }
}

/// A deterministic discrete-event simulation over boxed node automata.
///
/// # Examples
///
/// ```
/// use swiper_net::{Context, DelayModel, NodeId, Protocol, Simulation};
///
/// /// Every node broadcasts "hi" and outputs after hearing from everyone.
/// struct Hello { heard: usize }
/// impl Protocol for Hello {
///     type Msg = u64;
///     fn on_start(&mut self, ctx: &mut Context<u64>) {
///         ctx.broadcast(7);
///     }
///     fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut Context<u64>) {
///         self.heard += 1;
///         if self.heard == ctx.n() {
///             ctx.output(b"done".to_vec());
///         }
///     }
/// }
///
/// let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
///     (0..4).map(|_| Box::new(Hello { heard: 0 }) as Box<dyn Protocol<Msg = u64>>).collect();
/// let report = Simulation::new(nodes, 42).run();
/// assert!(report.outputs.iter().all(|o| o.as_deref() == Some(b"done".as_ref())));
/// ```
pub struct Simulation<M> {
    nodes: Vec<Box<dyn Protocol<Msg = M>>>,
    halted: Vec<bool>,
    queue: BinaryHeap<Reverse<Event<M>>>,
    rng: StdRng,
    delay: DelayModel,
    adaptive: Option<AdaptiveDelay<M>>,
    /// Epoch reconfigurations, ascending by event count.
    reconfigs: VecDeque<(u64, EpochEvent)>,
    reconfigs_applied: u64,
    seq: u64,
    time: u64,
    max_events: u64,
    metrics: Metrics,
    outputs: Vec<Option<Vec<u8>>>,
}

impl<M: Clone + MessageSize> Simulation<M> {
    /// Creates a simulation over the given node automata with a seed that
    /// fully determines the run.
    pub fn new(nodes: Vec<Box<dyn Protocol<Msg = M>>>, seed: u64) -> Self {
        let n = nodes.len();
        Simulation {
            nodes,
            halted: vec![false; n],
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(seed),
            delay: DelayModel::Uniform(1, 16),
            adaptive: None,
            reconfigs: VecDeque::new(),
            reconfigs_applied: 0,
            seq: 0,
            time: 0,
            max_events: 2_000_000,
            metrics: Metrics::new(n),
            outputs: vec![None; n],
        }
    }

    /// Sets the delay model (builder style).
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Caps the number of processed events (runaway guard).
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Installs an adversarial per-message-type delay model
    /// ([`AdaptiveDelay`]); it overrides the plain [`DelayModel`] for
    /// every non-self message.
    pub fn with_adaptive_delay(mut self, adaptive: AdaptiveDelay<M>) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// Schedules an epoch reconfiguration: once `at_event` events have
    /// been processed, every non-halted node receives
    /// [`Protocol::on_reconfigure`] with `event` before the next delivery.
    /// Multiple reconfigurations compose in event order;
    /// [`EpochedSimulation`] is the builder for whole epoch schedules.
    pub fn with_reconfiguration(mut self, at_event: u64, event: EpochEvent) -> Self {
        let pos = self.reconfigs.partition_point(|(at, _)| *at <= at_event);
        self.reconfigs.insert(pos, (at_event, event));
        self
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    fn flush(&mut self, node: NodeId, ctx: Context<M>) {
        let Context { outbox, timers, output, halted, .. } = ctx;
        if let Some(out) = output {
            if self.outputs[node].is_none() {
                self.outputs[node] = Some(out);
            }
        }
        if halted {
            self.halted[node] = true;
        }
        let n = self.n();
        // Expand symbolic broadcasts into ascending per-recipient sends.
        // Recipient order (and the skip-self rule below) must match the
        // eager-clone era exactly so seeded delay streams — and therefore
        // every pinned seed in the test suite — are unchanged.
        let mut sends = Vec::with_capacity(outbox.len());
        for d in outbox {
            d.expand_into(n, &mut sends);
        }
        for (to, msg) in sends {
            self.metrics.record_send(node, msg.size_bytes());
            let delay = if to == node {
                0
            } else if let Some(adaptive) = &self.adaptive {
                adaptive.sample(&mut self.rng, node, n, &msg)
            } else {
                self.delay.sample(&mut self.rng, node, n)
            };
            self.seq += 1;
            self.queue.push(Reverse(Event {
                time: self.time + delay,
                seq: self.seq,
                to,
                payload: Payload::Message { from: node, msg },
            }));
        }
        for (delay, id) in timers {
            self.seq += 1;
            self.queue.push(Reverse(Event {
                time: self.time + delay.max(1),
                seq: self.seq,
                to: node,
                payload: Payload::Timer { id },
            }));
        }
    }

    /// Runs to quiescence (or the event cap) and reports.
    pub fn run(mut self) -> RunReport {
        let n = self.n();
        for node in 0..n {
            let mut ctx = Context::new(node, n, 0);
            self.nodes[node].on_start(&mut ctx);
            self.flush(node, ctx);
        }
        let mut events = 0u64;
        while let Some(Reverse(ev)) = self.queue.pop() {
            if events >= self.max_events {
                break;
            }
            // The boundary shares the upcoming delivery's timestamp:
            // advancing the clock *before* applying reconfigurations
            // keeps simulated time monotone — effects emitted from
            // `on_reconfigure` are stamped at `ev.time + delay`, never
            // before an event that already popped.
            self.time = ev.time;
            // Epoch boundaries: apply every reconfiguration scheduled at
            // or before the current event count, in order, before the
            // next delivery. In-flight messages sent under the old
            // assignment stay queued and are delivered afterwards —
            // surviving protocol state must cope (the `on_reconfigure`
            // contract).
            while self.reconfigs.front().is_some_and(|(at, _)| *at <= events) {
                let (_, event) = self.reconfigs.pop_front().expect("front checked");
                self.reconfigs_applied += 1;
                for node in 0..n {
                    if self.halted[node] {
                        continue;
                    }
                    let mut ctx = Context::new(node, n, self.time);
                    self.nodes[node].on_reconfigure(&event, &mut ctx);
                    self.flush(node, ctx);
                }
            }
            events += 1;
            let node = ev.to;
            if self.halted[node] {
                continue;
            }
            let mut ctx = Context::new(node, n, self.time);
            match ev.payload {
                Payload::Message { from, msg } => {
                    self.metrics.record_delivery(node, msg.size_bytes());
                    self.nodes[node].on_message(from, msg, &mut ctx);
                }
                Payload::Timer { id } => self.nodes[node].on_timer(id, &mut ctx),
            }
            self.flush(node, ctx);
        }
        RunReport {
            outputs: self.outputs,
            elapsed: self.time,
            events,
            reconfigurations: self.reconfigs_applied,
            metrics: self.metrics,
        }
    }
}

/// Driver for live-instance epoch reconfiguration: a [`Simulation`] plus a
/// schedule of [`EpochEvent`]s injected at configured event counts.
///
/// Each injection delivers [`Protocol::on_reconfigure`] to every
/// non-halted node *between* two event deliveries, modelling the
/// common-knowledge moment at which all replicas learn the new epoch's
/// ticket assignment *and stake distribution*. Messages already in flight
/// were sent under the old assignment and are still delivered afterwards
/// — protocols that embed
/// virtual-user ids in their messages must translate across the boundary
/// (see `swiper-protocols`' black-box wrapper for the reference
/// implementation).
///
/// # Examples
///
/// ```
/// use swiper_core::{EpochEvent, TicketAssignment, TicketDelta, Weights};
/// use swiper_net::{Context, EpochedSimulation, NodeId, Protocol};
///
/// /// Counts reconfigurations; outputs the count at quiescence.
/// struct EpochCounter { seen: u8 }
/// impl Protocol for EpochCounter {
///     type Msg = u64;
///     fn on_start(&mut self, ctx: &mut Context<u64>) {
///         ctx.broadcast(1);
///     }
///     fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<u64>) {
///         ctx.output(vec![self.seen]);
///     }
///     fn on_reconfigure(&mut self, _e: &EpochEvent, _ctx: &mut Context<u64>) {
///         self.seen += 1;
///     }
/// }
///
/// let old = TicketAssignment::new(vec![1, 1]);
/// let new = TicketAssignment::new(vec![2, 1]);
/// let delta = TicketDelta::between(&old, &new).unwrap();
/// let stake = Weights::new(vec![6, 4]).unwrap();
/// let event = EpochEvent::new(1, delta, &stake, stake.clone(), 0).unwrap();
/// let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
///     (0..2).map(|_| Box::new(EpochCounter { seen: 0 }) as _).collect();
/// let report = EpochedSimulation::new(nodes, 7).inject_at(1, event).run();
/// assert_eq!(report.reconfigurations, 1);
/// ```
pub struct EpochedSimulation<M> {
    sim: Simulation<M>,
}

impl<M: Clone + MessageSize> EpochedSimulation<M> {
    /// Creates the driver over the given node automata and seed.
    pub fn new(nodes: Vec<Box<dyn Protocol<Msg = M>>>, seed: u64) -> Self {
        EpochedSimulation { sim: Simulation::new(nodes, seed) }
    }

    /// Wraps an already-configured simulation.
    pub fn from_simulation(sim: Simulation<M>) -> Self {
        EpochedSimulation { sim }
    }

    /// Sets the delay model (builder style).
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.sim = self.sim.with_delay(delay);
        self
    }

    /// Installs an adversarial per-message-type delay model.
    pub fn with_adaptive_delay(mut self, adaptive: AdaptiveDelay<M>) -> Self {
        self.sim = self.sim.with_adaptive_delay(adaptive);
        self
    }

    /// Caps the number of processed events.
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.sim = self.sim.with_max_events(max);
        self
    }

    /// Schedules `event` for injection once `at_event` events have been
    /// processed. Events compose in event order; each delta must be
    /// diffed against the assignment the previous one produced (and each
    /// event's weights follow its predecessor's).
    pub fn inject_at(mut self, at_event: u64, event: EpochEvent) -> Self {
        self.sim = self.sim.with_reconfiguration(at_event, event);
        self
    }

    /// Schedules a whole epoch chain: each `(at_event, event)` pair is
    /// injected in order. Shrinking and renumbering deltas — and
    /// stake-drifting weight vectors — are first-class: the schedule is
    /// exactly what a churned multi-epoch replay (mixed joins, leaves and
    /// live renumbering every epoch, weights refreshed each epoch) hands
    /// the driver.
    pub fn inject_schedule<I>(mut self, schedule: I) -> Self
    where
        I: IntoIterator<Item = (u64, EpochEvent)>,
    {
        for (at_event, event) in schedule {
            self.sim = self.sim.with_reconfiguration(at_event, event);
        }
        self
    }

    /// Runs to quiescence (or the event cap) and reports.
    pub fn run(self) -> RunReport {
        self.sim.run()
    }
}

impl<M: Clone + MessageSize> Runtime<M> for Simulation<M> {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn run(self) -> RunReport {
        Simulation::run(self)
    }
}

impl<M: Clone + MessageSize> Runtime<M> for EpochedSimulation<M> {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn run(self) -> RunReport {
        EpochedSimulation::run(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each node broadcasts its id once; outputs the sum of ids received.
    struct Summer {
        sum: u64,
        heard: usize,
    }

    impl Protocol for Summer {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(ctx.me() as u64);
        }

        fn on_message(&mut self, _from: NodeId, msg: u64, ctx: &mut Context<u64>) {
            self.sum += msg;
            self.heard += 1;
            if self.heard == ctx.n() {
                ctx.output(self.sum.to_le_bytes().to_vec());
            }
        }
    }

    fn summers(n: usize) -> Vec<Box<dyn Protocol<Msg = u64>>> {
        (0..n)
            .map(|_| Box::new(Summer { sum: 0, heard: 0 }) as Box<dyn Protocol<Msg = u64>>)
            .collect()
    }

    #[test]
    fn all_messages_delivered() {
        let report = Simulation::new(summers(5), 1).run();
        let expect = (0u64..5).sum::<u64>().to_le_bytes().to_vec();
        for out in &report.outputs {
            assert_eq!(out.as_ref().unwrap(), &expect);
        }
        // 5 broadcasts of 5 messages each.
        assert_eq!(report.metrics.total_messages(), 25);
        assert_eq!(report.metrics.total_bytes(), 25 * 8);
    }

    #[test]
    fn same_seed_same_run() {
        let a = Simulation::new(summers(7), 99).run();
        let b = Simulation::new(summers(7), 99).run();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_delay_models_still_deliver() {
        for delay in [
            DelayModel::Fixed(3),
            DelayModel::Uniform(1, 50),
            DelayModel::BiasAgainstLowIds(1, 40),
        ] {
            let report = Simulation::new(summers(6), 5).with_delay(delay).run();
            assert!(report.outputs.iter().all(|o| o.is_some()), "{delay:?}");
        }
    }

    #[test]
    fn event_cap_stops_runaway() {
        /// A node that replies to every message, forever.
        struct Chatter;
        impl Protocol for Chatter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut Context<u64>) {
                ctx.send(from, msg + 1);
            }
        }
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
            (0..3).map(|_| Box::new(Chatter) as _).collect();
        let report = Simulation::new(nodes, 1).with_max_events(1000).run();
        assert_eq!(report.events, 1000);
    }

    #[test]
    fn halted_nodes_receive_nothing() {
        /// Halts immediately; counts messages seen.
        struct Quitter {
            seen: std::rc::Rc<std::cell::Cell<usize>>,
        }
        impl Protocol for Quitter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.halt();
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, _ctx: &mut Context<u64>) {
                self.seen.set(self.seen.get() + 1);
            }
        }
        let seen = std::rc::Rc::new(std::cell::Cell::new(0));
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Quitter { seen: seen.clone() }),
            Box::new(Summer { sum: 0, heard: 0 }),
        ];
        let _ = Simulation::new(nodes, 3).run();
        assert_eq!(seen.get(), 0);
    }

    #[test]
    fn timers_fire() {
        struct TimerNode;
        impl Protocol for TimerNode {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.set_timer(10, 42);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, _c: &mut Context<u64>) {}
            fn on_timer(&mut self, id: u64, ctx: &mut Context<u64>) {
                ctx.output(id.to_le_bytes().to_vec());
            }
        }
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![Box::new(TimerNode)];
        let report = Simulation::new(nodes, 1).run();
        assert_eq!(report.outputs[0].as_ref().unwrap(), &42u64.to_le_bytes().to_vec());
        assert_eq!(report.elapsed, 10);
    }

    #[test]
    fn self_messages_are_instant() {
        struct SelfSend;
        impl Protocol for SelfSend {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                let me = ctx.me();
                ctx.send(me, 1);
            }
            fn on_message(&mut self, from: NodeId, _m: u64, ctx: &mut Context<u64>) {
                assert_eq!(from, ctx.me());
                ctx.output(vec![1]);
            }
        }
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![Box::new(SelfSend)];
        let report = Simulation::new(nodes, 1).run();
        assert_eq!(report.elapsed, 0, "self delivery takes zero time");
        assert!(report.outputs[0].is_some());
    }

    #[test]
    fn agreement_helper() {
        let report = Simulation::new(summers(4), 2).run();
        assert!(report.agreement_among(&[0, 1, 2, 3]));
        assert!(report.unanimity_among(&[0, 1, 2, 3]));
        assert!(report.outputs_of(&[0, 1]).is_some());
    }

    /// Pins `agreement_among`'s intended semantics: silent (halted- or
    /// crashed-without-output) nodes are *ignored*, never counted as
    /// disagreeing — epoch-crossing runs legitimately produce late or
    /// absent outputs. `unanimity_among` is the strict form that also
    /// demands liveness.
    #[test]
    fn agreement_ignores_silent_nodes_unanimity_does_not() {
        let base = RunReport {
            outputs: vec![Some(vec![7]), None, Some(vec![7]), None],
            elapsed: 0,
            events: 0,
            reconfigurations: 0,
            metrics: Metrics::new(4),
        };
        // Two agreeing outputs + two silent nodes: agreement holds.
        assert!(base.agreement_among(&[0, 1, 2, 3]));
        // ...but unanimity (agreement + liveness) does not.
        assert!(!base.unanimity_among(&[0, 1, 2, 3]));
        // All-silent subsets agree vacuously.
        assert!(base.agreement_among(&[1, 3]));
        assert!(!base.unanimity_among(&[1, 3]));
        assert!(base.unanimity_among(&[0, 2]));
        // An actual conflict is disagreement in both forms.
        let mut split = base.clone();
        split.outputs[1] = Some(vec![9]);
        assert!(!split.agreement_among(&[0, 1, 2, 3]));
        assert!(!split.unanimity_among(&[0, 1, 2, 3]));
    }

    /// Unit-weight event over `n` parties for plumbing tests that do not
    /// exercise stake refresh.
    fn unit_event(old: &[u64], new: &[u64]) -> EpochEvent {
        use swiper_core::{TicketAssignment, TicketDelta, Weights};
        let delta = TicketDelta::between(
            &TicketAssignment::new(old.to_vec()),
            &TicketAssignment::new(new.to_vec()),
        )
        .unwrap();
        let stake = Weights::new(vec![1; old.len()]).unwrap();
        EpochEvent::new(1, delta, &stake, stake.clone(), 0).unwrap()
    }

    #[test]
    fn reconfigurations_fire_between_deliveries() {
        /// Outputs how many reconfigurations it saw, once a message
        /// arrives after the epoch boundary.
        struct EpochAware {
            seen: u8,
        }
        impl Protocol for EpochAware {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<u64>) {
                if self.seen > 0 {
                    ctx.output(vec![self.seen]);
                }
            }
            fn on_reconfigure(&mut self, _e: &EpochEvent, ctx: &mut Context<u64>) {
                self.seen += 1;
                ctx.broadcast(1);
            }
        }

        let event = unit_event(&[1, 1, 1], &[2, 1, 1]);
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
            (0..3).map(|_| Box::new(EpochAware { seen: 0 }) as _).collect();
        let report = Simulation::new(nodes, 5).with_reconfiguration(2, event).run();
        assert_eq!(report.reconfigurations, 1);
        for out in &report.outputs {
            assert_eq!(out.as_deref(), Some(&[1u8][..]));
        }
    }

    #[test]
    fn time_is_monotone_across_reconfiguration() {
        /// Arms a far-future timer, then records `now()` at every
        /// callback; the reconfiguration fires while that gap is open.
        struct Clock {
            stamps: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Protocol for Clock {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.set_timer(50, 1);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<u64>) {
                self.stamps.borrow_mut().push(ctx.now());
            }
            fn on_timer(&mut self, _id: u64, ctx: &mut Context<u64>) {
                self.stamps.borrow_mut().push(ctx.now());
            }
            fn on_reconfigure(&mut self, _e: &EpochEvent, ctx: &mut Context<u64>) {
                self.stamps.borrow_mut().push(ctx.now());
                let me = ctx.me();
                ctx.send(me, 7);
            }
        }

        let event = unit_event(&[1], &[1]);
        let stamps = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
            vec![Box::new(Clock { stamps: stamps.clone() })];
        // The boundary lands in the 0..50 gap before the timer delivery;
        // it must share the upcoming event's timestamp, not the previous
        // one's, or effects it emits travel back in time.
        let report = Simulation::new(nodes, 2).with_reconfiguration(0, event).run();
        assert_eq!(report.reconfigurations, 1);
        let stamps = stamps.borrow();
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "simulated time regressed across the epoch boundary: {stamps:?}"
        );
        assert_eq!(stamps.len(), 3, "reconfigure + timer + self-message all observed");
    }

    #[test]
    fn inject_schedule_composes_epoch_chains_in_order() {
        /// Counts reconfigurations; keeps traffic alive long enough for
        /// the whole schedule to fire.
        struct EpochCounter {
            seen: u8,
            bounced: u32,
        }
        impl Protocol for EpochCounter {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Context<u64>) {
                ctx.broadcast(0);
            }
            fn on_message(&mut self, _f: NodeId, _m: u64, ctx: &mut Context<u64>) {
                if self.bounced < 20 {
                    self.bounced += 1;
                    ctx.broadcast(0);
                }
            }
            fn on_reconfigure(&mut self, _e: &EpochEvent, ctx: &mut Context<u64>) {
                self.seen += 1;
                ctx.output(vec![self.seen]);
            }
        }

        // A mixed chain: grow, then shrink-and-renumber, then grow again —
        // each delta diffed against its predecessor.
        let schedule = vec![
            (2, unit_event(&[2, 1], &[3, 1])),
            (5, unit_event(&[3, 1], &[1, 2])),
            (9, unit_event(&[1, 2], &[2, 2])),
        ];
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> =
            (0..2).map(|_| Box::new(EpochCounter { seen: 0, bounced: 0 }) as _).collect();
        let report = EpochedSimulation::new(nodes, 3).inject_schedule(schedule).run();
        assert_eq!(report.reconfigurations, 3);
    }

    #[test]
    fn reconfiguration_past_quiescence_never_fires() {
        let event = unit_event(&[1, 1], &[1, 1]);
        let report =
            Simulation::new(summers(2), 1).with_reconfiguration(1_000_000, event).run();
        assert_eq!(report.reconfigurations, 0);
        assert!(report.outputs.iter().all(|o| o.is_some()));
    }
}
