//! The determinism twin: every threaded-runtime run is replayable on the
//! deterministic simulator substrate, bit-identically.
//!
//! A [`ThreadedRuntime`](crate::ThreadedRuntime) run is nondeterministic —
//! OS scheduling decides the delivery order. What it *records* is a
//! [`DeliveryTrace`]: the exact callback sequence it executed, with each
//! message identified by its sender's per-node send index rather than by
//! payload. Because [`Protocol`] automata are deterministic functions of
//! their callback sequence, [`DeliveryTrace::replay`] can re-execute the
//! run single-threaded on fresh nodes, re-deriving every payload, and the
//! resulting outputs and [`Metrics`] must equal the live run's exactly.
//! Any mismatch — a send index that was never emitted, a timer id that
//! differs, a delivery to a node the replay believes halted — is a
//! [`TwinError`], the signal that an automaton hides nondeterminism
//! (wall-clock reads, iteration-order-dependent emissions, shared mutable
//! state) that the simulator cannot reproduce.
//!
//! The trace stores *coordinates, not payloads*: ~3 words per event, so
//! tracing stays cheap enough to leave on for every benchmark run (the
//! `runtime_scale --ci-smoke` gate replays every cell nightly).

use swiper_core::EpochEvent;

use crate::metrics::Metrics;
use crate::sim::{Context, NodeId, Protocol, RunReport};
use crate::MessageSize;

/// One recorded callback of a runtime run, in a causally consistent total
/// order (an event's record is appended before any of its effects become
/// visible to other nodes, so every `Deliver` appears after the record of
/// the callback that sent it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// `to` processed the message `from` emitted as its `send_ix`-th send.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Sending node.
        from: NodeId,
        /// The sender's per-node send sequence number.
        send_ix: u64,
        /// Monotonic tick at delivery (the receiver's `ctx.now()`).
        at: u64,
    },
    /// `to`'s `timer_ix`-th armed timer fired.
    Timer {
        /// The node whose timer fired.
        to: NodeId,
        /// The node's per-node timer arm counter.
        timer_ix: u64,
        /// The timer id the automaton armed (cross-checked on replay).
        id: u64,
        /// Monotonic tick at firing.
        at: u64,
    },
    /// `to` processed the `epoch_ix`-th injected [`EpochEvent`].
    Epoch {
        /// The reconfigured node.
        to: NodeId,
        /// Index into the trace's epoch-event schedule.
        epoch_ix: usize,
        /// Monotonic tick at application.
        at: u64,
    },
}

/// The replayable record of one runtime run: per-node start times, the
/// causally ordered callback sequence, and the epoch events the run
/// injected.
#[derive(Debug, Clone)]
pub struct DeliveryTrace {
    pub(crate) n: usize,
    /// `ctx.now()` each node saw in `on_start`.
    pub(crate) start_at: Vec<u64>,
    pub(crate) events: Vec<TraceEvent>,
    pub(crate) epochs: Vec<EpochEvent>,
}

/// A divergence between a recorded runtime run and its simulator replay:
/// the trace references state the deterministic re-execution never
/// produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwinError {
    /// Position in the trace at which the replay diverged.
    pub at_event: usize,
    /// What the replay could not reproduce.
    pub reason: String,
}

impl std::fmt::Display for TwinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "twin replay diverged at trace event {}: {}", self.at_event, self.reason)
    }
}

impl std::error::Error for TwinError {}

/// Replay-side view of one node: the messages and timers it has emitted
/// (keyed by the same per-node counters the runtime assigned) and whether
/// it has halted.
struct ReplayNode<M> {
    sent: std::collections::HashMap<u64, (NodeId, M)>,
    next_send_ix: u64,
    armed: std::collections::HashMap<u64, u64>,
    next_timer_ix: u64,
    halted: bool,
}

impl<M> ReplayNode<M> {
    fn new() -> Self {
        ReplayNode {
            sent: std::collections::HashMap::new(),
            next_send_ix: 0,
            armed: std::collections::HashMap::new(),
            next_timer_ix: 0,
            halted: false,
        }
    }
}

impl DeliveryTrace {
    /// Number of nodes the trace was recorded over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of recorded callbacks.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the run recorded no callbacks at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Re-executes the recorded run on fresh `nodes`, single-threaded and
    /// deterministic, and reports. The nodes must be constructed exactly
    /// as the live run's were (same configs, same seeds): the replay
    /// re-derives every payload from the automata themselves, so the
    /// returned outputs and metrics are bit-comparable with the live
    /// run's.
    ///
    /// # Errors
    ///
    /// [`TwinError`] when the trace references an emission the replay
    /// never produced — the bit-identity contract is violated.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the traced population.
    pub fn replay<M: Clone + MessageSize>(
        &self,
        mut nodes: Vec<Box<dyn Protocol<Msg = M>>>,
    ) -> Result<RunReport, TwinError> {
        assert_eq!(nodes.len(), self.n, "replay population must match the trace");
        let n = self.n;
        let mut metrics = Metrics::new(n);
        let mut outputs: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut state: Vec<ReplayNode<M>> = (0..n).map(|_| ReplayNode::new()).collect();
        let mut elapsed = 0u64;

        let flush = |node: NodeId,
                     ctx: Context<M>,
                     state: &mut Vec<ReplayNode<M>>,
                     outputs: &mut Vec<Option<Vec<u8>>>,
                     metrics: &mut Metrics| {
            let effects = ctx.into_effects();
            if let Some(out) = effects.output {
                if outputs[node].is_none() {
                    outputs[node] = Some(out);
                }
            }
            if effects.halted {
                state[node].halted = true;
            }
            for (to, msg) in effects.outbox {
                metrics.record_send(node, msg.size_bytes());
                let ix = state[node].next_send_ix;
                state[node].next_send_ix += 1;
                state[node].sent.insert(ix, (to, msg));
            }
            for (_delay, id) in effects.timers {
                let ix = state[node].next_timer_ix;
                state[node].next_timer_ix += 1;
                state[node].armed.insert(ix, id);
            }
        };

        for (node, automaton) in nodes.iter_mut().enumerate() {
            let mut ctx = Context::detached(node, n, self.start_at[node]);
            automaton.on_start(&mut ctx);
            flush(node, ctx, &mut state, &mut outputs, &mut metrics);
        }

        let mut events = 0u64;
        for (pos, ev) in self.events.iter().enumerate() {
            let err = |reason: String| TwinError { at_event: pos, reason };
            match *ev {
                TraceEvent::Deliver { to, from, send_ix, at } => {
                    let Some((dest, msg)) = state[from].sent.remove(&send_ix) else {
                        return Err(err(format!(
                            "node {to} expects send #{send_ix} from node {from}, \
                             which the replay never emitted"
                        )));
                    };
                    if dest != to {
                        return Err(err(format!(
                            "send #{send_ix} from node {from} was addressed to \
                             node {dest}, not node {to}"
                        )));
                    }
                    if state[to].halted {
                        return Err(err(format!(
                            "delivery to node {to}, which already halted in the replay"
                        )));
                    }
                    elapsed = elapsed.max(at);
                    events += 1;
                    metrics.record_delivery(to, msg.size_bytes());
                    let mut ctx = Context::detached(to, n, at);
                    nodes[to].on_message(from, msg, &mut ctx);
                    flush(to, ctx, &mut state, &mut outputs, &mut metrics);
                }
                TraceEvent::Timer { to, timer_ix, id, at } => {
                    let Some(armed) = state[to].armed.remove(&timer_ix) else {
                        return Err(err(format!(
                            "timer #{timer_ix} on node {to} was never armed in the replay"
                        )));
                    };
                    if armed != id {
                        return Err(err(format!(
                            "timer #{timer_ix} on node {to} was armed with id {armed}, \
                             the live run fired id {id}"
                        )));
                    }
                    if state[to].halted {
                        return Err(err(format!(
                            "timer fire on node {to}, which already halted in the replay"
                        )));
                    }
                    elapsed = elapsed.max(at);
                    events += 1;
                    let mut ctx = Context::detached(to, n, at);
                    nodes[to].on_timer(id, &mut ctx);
                    flush(to, ctx, &mut state, &mut outputs, &mut metrics);
                }
                TraceEvent::Epoch { to, epoch_ix, at } => {
                    let Some(event) = self.epochs.get(epoch_ix) else {
                        return Err(err(format!(
                            "epoch #{epoch_ix} is not in the trace's schedule"
                        )));
                    };
                    if state[to].halted {
                        return Err(err(format!(
                            "reconfiguration of node {to}, which already halted in the replay"
                        )));
                    }
                    elapsed = elapsed.max(at);
                    let mut ctx = Context::detached(to, n, at);
                    nodes[to].on_reconfigure(event, &mut ctx);
                    flush(to, ctx, &mut state, &mut outputs, &mut metrics);
                }
            }
        }

        Ok(RunReport {
            outputs,
            elapsed,
            events,
            reconfigurations: self.epochs.len() as u64,
            metrics,
        })
    }
}
