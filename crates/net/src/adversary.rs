//! Generic Byzantine behaviours, composable with any [`Protocol`].
//!
//! The simulation models Byzantine parties as alternative node automata:
//! wrap an honest implementation (or replace it outright) to inject
//! silence, crashes or message corruption. Protocol crates add
//! protocol-specific attackers (equivocators, bad dealers) on top.
//!
//! The *zoo* members below are the schedule-shaping attackers the nightly
//! seed sweeps run against every protocol:
//!
//! * [`Silent`], [`CrashAfter`], [`Mangler`] — the classic trio;
//! * [`EquivocatingDealer`] — runs two inner automata and shows each half
//!   of the network a different one (conflicting AVID dispersals,
//!   conflicting broadcasts);
//! * [`SelectiveAck`] — runs the inner automaton honestly but lets its
//!   traffic reach only a chosen quorum, stalling everyone else;
//! * [`EpochShifter`] — honest until the first reconfiguration, then
//!   replays its old-epoch traffic so the same logical votes straddle the
//!   boundary under two numberings (the attack on cross-epoch identity);
//! * [`BoundaryEquivocator`] — honest *within* every epoch, but at the
//!   first [`EpochEvent`] boundary re-asserts mangled versions of its own
//!   pre-boundary statements (the attack on cross-epoch consistency
//!   checks: its two stories live in different epochs);
//! * [`AdaptiveDelay`] — not a node but a *delay model keyed on message
//!   type*, pinning chosen message classes to adversarial latencies.

use rand::rngs::StdRng;
use swiper_core::EpochEvent;

use crate::sim::{Context, DelayModel, NodeId, Protocol};
use crate::MessageSize;

/// A node that never sends anything — the simplest Byzantine behaviour
/// (and also a model of a crashed-from-start node).
#[derive(Debug, Default)]
pub struct Silent<M> {
    _marker: std::marker::PhantomData<M>,
}

impl<M> Silent<M> {
    /// Creates a silent node.
    pub fn new() -> Self {
        Silent { _marker: std::marker::PhantomData }
    }
}

impl<M: Clone + MessageSize> Protocol for Silent<M> {
    type Msg = M;

    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut Context<M>) {}
}

/// Runs the inner protocol honestly, then crashes (goes permanently silent)
/// after delivering `crash_after` messages.
pub struct CrashAfter<P> {
    inner: P,
    crash_after: usize,
    delivered: usize,
}

impl<P> CrashAfter<P> {
    /// Wraps `inner`, crashing after `crash_after` deliveries.
    pub fn new(inner: P, crash_after: usize) -> Self {
        CrashAfter { inner, crash_after, delivered: 0 }
    }
}

impl<P: Protocol> Protocol for CrashAfter<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        if self.crash_after == 0 {
            ctx.halt();
        } else {
            self.inner.on_start(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        self.delivered += 1;
        if self.delivered >= self.crash_after {
            self.inner.on_message(from, msg, ctx);
            ctx.halt();
        } else {
            self.inner.on_message(from, msg, ctx);
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        self.inner.on_timer(id, ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        self.inner.on_reconfigure(event, ctx);
    }
}

/// Runs the inner protocol but rewrites every outgoing message through a
/// mangling function — a generic active-Byzantine wrapper.
pub struct Mangler<P, F> {
    inner: P,
    mangle: F,
}

impl<P, F> Mangler<P, F> {
    /// Wraps `inner`; `mangle(to, msg)` transforms (or, returning `None`,
    /// drops) each outgoing message.
    pub fn new(inner: P, mangle: F) -> Self {
        Mangler { inner, mangle }
    }
}

impl<P, F> Protocol for Mangler<P, F>
where
    P: Protocol,
    F: FnMut(NodeId, P::Msg) -> Option<P::Msg>,
{
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.inner.on_start(ctx);
        self.rewrite(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        self.inner.on_message(from, msg, ctx);
        self.rewrite(ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        self.inner.on_timer(id, ctx);
        self.rewrite(ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        self.inner.on_reconfigure(event, ctx);
        self.rewrite(ctx);
    }
}

impl<P, F> Mangler<P, F>
where
    P: Protocol,
    F: FnMut(NodeId, P::Msg) -> Option<P::Msg>,
{
    fn rewrite(&mut self, ctx: &mut Context<P::Msg>) {
        for (to, msg) in ctx.take_staged_expanded(0) {
            if let Some(m) = (self.mangle)(to, msg) {
                ctx.send(to, m);
            }
        }
    }
}

/// An equivocating dealer: runs **two** inner automata over the same
/// protocol and partitions the network between them — recipients with
/// id below `split` see only automaton `a`'s traffic, the rest see only
/// `b`'s. Both inners receive every inbound message, so each keeps
/// playing its half of the protocol plausibly.
///
/// This is the generic shape of the classic AVID attack (two internally
/// consistent dispersals with different Merkle roots shown to different
/// halves during retrieval) and of equivocating broadcast senders. The
/// defense it probes: quorum intersection must be keyed on the *claim*
/// (root, digest), never on bare sender identity.
pub struct EquivocatingDealer<P: Protocol> {
    a: P,
    b: P,
    split: NodeId,
}

impl<P: Protocol> EquivocatingDealer<P> {
    /// Creates the attacker; recipients `< split` see `a`, the rest `b`.
    pub fn new(a: P, b: P, split: NodeId) -> Self {
        EquivocatingDealer { a, b, split }
    }

    /// Runs one inner phase: keeps only the sends its partition is
    /// allowed to see, tags freshly set timers with the inner's bit, and
    /// suppresses inner outputs and halts (the dealer never terminates
    /// its own mischief early).
    fn phase(
        ctx: &mut Context<P::Msg>,
        keep: impl Fn(NodeId) -> bool,
        tag: u64,
        run: impl FnOnce(&mut Context<P::Msg>),
    ) {
        let before_out = ctx.outbox.len();
        let before_timers = ctx.timers.len();
        run(ctx);
        for (to, msg) in ctx.take_staged_expanded(before_out) {
            if keep(to) {
                ctx.send(to, msg);
            }
        }
        for (_, id) in &mut ctx.timers[before_timers..] {
            *id = (*id << 1) | tag;
        }
        ctx.output = None;
        ctx.halted = false;
    }
}

impl<P: Protocol> Protocol for EquivocatingDealer<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        let split = self.split;
        let a = &mut self.a;
        Self::phase(ctx, |to| to < split, 0, |c| a.on_start(c));
        let b = &mut self.b;
        Self::phase(ctx, |to| to >= split, 1, |c| b.on_start(c));
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        let split = self.split;
        let a = &mut self.a;
        Self::phase(ctx, |to| to < split, 0, |c| a.on_message(from, msg.clone(), c));
        let b = &mut self.b;
        Self::phase(ctx, |to| to >= split, 1, |c| b.on_message(from, msg, c));
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        // Timers carry the inner that set them in the low bit.
        let split = self.split;
        if id & 1 == 0 {
            let a = &mut self.a;
            Self::phase(ctx, |to| to < split, 0, |c| a.on_timer(id >> 1, c));
        } else {
            let b = &mut self.b;
            Self::phase(ctx, |to| to >= split, 1, |c| b.on_timer(id >> 1, c));
        }
    }
}

/// A quorum-splitter: runs the inner protocol honestly but lets its
/// outgoing traffic reach only the `allow`ed recipients — it acks (votes,
/// echoes, stores) toward a chosen quorum and starves everyone else.
///
/// The chosen quorum races ahead (completes, possibly halts) while the
/// stalled rest depend on the finishers' relay/late-duty paths — exactly
/// the schedules that expose halt-before-duty and missing-late-relay
/// bugs. Honest-majority protocols must stay live: the adversary only
/// *withholds* its own traffic, which the resilience budget already
/// tolerates.
pub struct SelectiveAck<P> {
    inner: P,
    allow: Vec<NodeId>,
}

impl<P> SelectiveAck<P> {
    /// Wraps `inner`; only recipients in `allow` ever hear from it.
    pub fn new(inner: P, allow: Vec<NodeId>) -> Self {
        SelectiveAck { inner, allow }
    }
}

impl<P: Protocol> SelectiveAck<P> {
    fn filter(&self, ctx: &mut Context<P::Msg>) {
        for (to, msg) in ctx.take_staged_expanded(0) {
            if self.allow.contains(&to) {
                ctx.send(to, msg);
            }
        }
    }
}

impl<P: Protocol> Protocol for SelectiveAck<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.inner.on_start(ctx);
        self.filter(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        self.inner.on_message(from, msg, ctx);
        self.filter(ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        self.inner.on_timer(id, ctx);
        self.filter(ctx);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        self.inner.on_reconfigure(event, ctx);
        self.filter(ctx);
    }
}

/// An epoch-crossing adversary: behaves honestly until the first
/// reconfiguration, then **replays every message it sent under the old
/// epoch's identities** — the natural attack on a translation layer. The
/// replayed wire bytes were minted when live participants held their
/// pre-epoch dense numbering, so straddling deliveries hand the receiver
/// the *same logical vote twice, once under each epoch's numbering*.
///
/// The defense under test is stable-identity resolution: wire formats
/// that name endpoints by `(party, offset)` resolve both copies to the
/// same logical voter, and stable-keyed quorum trackers dedupe them.
/// A dense-id design (per-epoch translation tables) translates the
/// pre-boundary copy under the old numbering and the post-boundary copy
/// under the new one — two distinct tracker keys, double-counted weight.
///
/// Replay is *withholding-free*: the inner automaton runs honestly
/// throughout, so the adversary stays inside the resilience budget; its
/// only power is the duplicate schedule.
pub struct EpochShifter<P: Protocol> {
    inner: P,
    sent: Vec<(NodeId, P::Msg)>,
    shifted: bool,
}

impl<P: Protocol> EpochShifter<P> {
    /// Wraps `inner`; the replay fires at the first reconfiguration.
    pub fn new(inner: P) -> Self {
        EpochShifter { inner, sent: Vec::new(), shifted: false }
    }

    /// Records this phase's fresh sends (pre-boundary only — the replay
    /// payload is exactly the old epoch's traffic). Staged broadcasts are
    /// expanded so the replay re-sends the identical per-recipient wire
    /// traffic.
    fn record(&mut self, ctx: &mut Context<P::Msg>, from: usize) {
        let staged = ctx.take_staged_expanded(from);
        if !self.shifted {
            self.sent.extend(staged.iter().cloned());
        }
        for (to, msg) in staged {
            ctx.send(to, msg);
        }
    }
}

impl<P: Protocol> Protocol for EpochShifter<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_start(ctx);
        self.record(ctx, before);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_message(from, msg, ctx);
        self.record(ctx, before);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_timer(id, ctx);
        self.record(ctx, before);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        self.inner.on_reconfigure(event, ctx);
        if !self.shifted {
            self.shifted = true;
            // Equivocate under the old epoch's identities: every message
            // minted pre-boundary goes out again, verbatim, into the new
            // epoch.
            let replay: Vec<_> = self.sent.drain(..).collect();
            for (to, msg) in replay {
                ctx.send(to, msg);
            }
        }
    }
}

/// An epoch-boundary equivocator: behaves honestly **within every
/// epoch**, but at the first [`EpochEvent`] it re-asserts mangled
/// versions of every message it sent under the old epoch — the same
/// identity telling two stories, one per epoch. Unlike [`EpochShifter`]
/// (whose replay is verbatim, probing identity *dedup*), the mangled
/// replay probes the receiver's **consistency checks**: payload/digest
/// binding, first-vote-wins maps, claim-keyed quorums. Within each epoch
/// the node is unimpeachable; only a cross-boundary comparison reveals
/// the contradiction.
///
/// `mangle(to, msg)` transforms (or, returning `None`, drops) each
/// recorded message at replay time — e.g. re-sending an `Echo(digest,
/// payload)` with the original digest but a forged payload.
pub struct BoundaryEquivocator<P: Protocol, F> {
    inner: P,
    sent: Vec<(NodeId, P::Msg)>,
    shifted: bool,
    mangle: F,
}

impl<P: Protocol, F> BoundaryEquivocator<P, F> {
    /// Wraps `inner`; the mangled replay fires at the first epoch event.
    pub fn new(inner: P, mangle: F) -> Self {
        BoundaryEquivocator { inner, sent: Vec::new(), shifted: false, mangle }
    }

    /// Records this phase's fresh sends (pre-boundary only — the replay
    /// payload is exactly the old epoch's traffic), expanded per
    /// recipient so the mangled replay targets the same wire audience.
    fn record(&mut self, ctx: &mut Context<P::Msg>, from: usize) {
        let staged = ctx.take_staged_expanded(from);
        if !self.shifted {
            self.sent.extend(staged.iter().cloned());
        }
        for (to, msg) in staged {
            ctx.send(to, msg);
        }
    }
}

impl<P, F> Protocol for BoundaryEquivocator<P, F>
where
    P: Protocol,
    F: FnMut(NodeId, P::Msg) -> Option<P::Msg>,
{
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_start(ctx);
        self.record(ctx, before);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_message(from, msg, ctx);
        self.record(ctx, before);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        let before = ctx.outbox.len();
        self.inner.on_timer(id, ctx);
        self.record(ctx, before);
    }

    fn on_reconfigure(&mut self, event: &EpochEvent, ctx: &mut Context<Self::Msg>) {
        self.inner.on_reconfigure(event, ctx);
        if !self.shifted {
            self.shifted = true;
            // Contradict the old epoch's statements in the new one: every
            // message minted pre-boundary goes out again, mangled.
            let replay: Vec<_> = self.sent.drain(..).collect();
            for (to, msg) in replay {
                if let Some(mangled) = (self.mangle)(to, msg) {
                    ctx.send(to, mangled);
                }
            }
        }
    }
}

/// An adversarial delay model **keyed on message type**: the first rule
/// whose predicate matches an outgoing message pins its delay; everything
/// else falls back to the base [`DelayModel`].
///
/// This models a network-level adversary that recognizes protocol phases
/// on the wire (dispersals vs acks, votes vs shares) and reorders them —
/// e.g. rushing share releases ahead of the votes that justify them. The
/// rules use plain function pointers so the model stays `Clone` and the
/// schedule stays fully deterministic for a given seed.
pub struct AdaptiveDelay<M> {
    base: DelayModel,
    rules: Vec<DelayRule<M>>,
}

/// One [`AdaptiveDelay`] rule: messages matching the predicate take
/// exactly the given number of ticks.
pub type DelayRule<M> = (fn(&M) -> bool, u64);

impl<M> AdaptiveDelay<M> {
    /// A model that behaves like `base` until rules are added.
    pub fn new(base: DelayModel) -> Self {
        AdaptiveDelay { base, rules: Vec::new() }
    }

    /// Adds a rule (builder style): messages matching `matches` take
    /// exactly `delay` ticks. Earlier rules win.
    pub fn rule(mut self, matches: fn(&M) -> bool, delay: u64) -> Self {
        self.rules.push((matches, delay));
        self
    }

    pub(crate) fn sample(&self, rng: &mut StdRng, from: NodeId, n: usize, msg: &M) -> u64 {
        for (matches, delay) in &self.rules {
            if matches(msg) {
                return *delay;
            }
        }
        self.base.sample(rng, from, n)
    }
}

impl<M> Clone for AdaptiveDelay<M> {
    fn clone(&self) -> Self {
        AdaptiveDelay { base: self.base, rules: self.rules.clone() }
    }
}

impl<M> std::fmt::Debug for AdaptiveDelay<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveDelay")
            .field("base", &self.base)
            .field("rules", &self.rules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    /// Broadcasts 1; outputs the number of messages heard after hearing
    /// from a strict majority.
    struct Counter {
        heard: usize,
    }

    impl Protocol for Counter {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(1);
        }

        fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut Context<u64>) {
            self.heard += 1;
            if self.heard * 2 > ctx.n() {
                ctx.output(vec![self.heard as u8]);
            }
        }
    }

    #[test]
    fn silent_nodes_send_nothing() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
            Box::new(Silent::new()),
        ];
        let report = Simulation::new(nodes, 11).run();
        assert_eq!(report.metrics.sent_by(3), 0);
        // Honest nodes still reach majority (3 of 4 messages).
        for i in 0..3 {
            assert!(report.outputs[i].is_some());
        }
    }

    #[test]
    fn crash_after_limits_participation() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(CrashAfter::new(Counter { heard: 0 }, 1)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 17).run();
        // The crashed node delivered at most 1 message; others complete.
        assert!(report.outputs[1].is_some());
        assert!(report.outputs[2].is_some());
    }

    #[test]
    fn crash_at_zero_is_fully_silent() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(CrashAfter::new(Counter { heard: 0 }, 0)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 17).run();
        assert_eq!(report.metrics.sent_by(0), 0);
    }

    #[test]
    fn mangler_corrupts_payloads() {
        // Node 0 lies: doubles every payload it sends.
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Mangler::new(Counter { heard: 0 }, |_to, m: u64| Some(m * 2))),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 23).run();
        // Counter ignores payload values, so all still complete; the point
        // is that mangling does not break the harness.
        assert!(report.outputs.iter().all(|o| o.is_some()));
    }

    #[test]
    fn mangler_can_drop_messages() {
        // Node 0 drops everything it would send.
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Mangler::new(Counter { heard: 0 }, |_to, _m: u64| None)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 29).run();
        assert_eq!(report.metrics.sent_by(0), 0);
    }
}
