//! Generic Byzantine behaviours, composable with any [`Protocol`].
//!
//! The simulation models Byzantine parties as alternative node automata:
//! wrap an honest implementation (or replace it outright) to inject
//! silence, crashes or message corruption. Protocol crates add
//! protocol-specific attackers (equivocators, bad dealers) on top.

use crate::sim::{Context, NodeId, Protocol};
use crate::MessageSize;

/// A node that never sends anything — the simplest Byzantine behaviour
/// (and also a model of a crashed-from-start node).
#[derive(Debug, Default)]
pub struct Silent<M> {
    _marker: std::marker::PhantomData<M>,
}

impl<M> Silent<M> {
    /// Creates a silent node.
    pub fn new() -> Self {
        Silent { _marker: std::marker::PhantomData }
    }
}

impl<M: Clone + MessageSize> Protocol for Silent<M> {
    type Msg = M;

    fn on_start(&mut self, _ctx: &mut Context<M>) {}

    fn on_message(&mut self, _from: NodeId, _msg: M, _ctx: &mut Context<M>) {}
}

/// Runs the inner protocol honestly, then crashes (goes permanently silent)
/// after delivering `crash_after` messages.
pub struct CrashAfter<P> {
    inner: P,
    crash_after: usize,
    delivered: usize,
}

impl<P> CrashAfter<P> {
    /// Wraps `inner`, crashing after `crash_after` deliveries.
    pub fn new(inner: P, crash_after: usize) -> Self {
        CrashAfter { inner, crash_after, delivered: 0 }
    }
}

impl<P: Protocol> Protocol for CrashAfter<P> {
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        if self.crash_after == 0 {
            ctx.halt();
        } else {
            self.inner.on_start(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        self.delivered += 1;
        if self.delivered >= self.crash_after {
            self.inner.on_message(from, msg, ctx);
            ctx.halt();
        } else {
            self.inner.on_message(from, msg, ctx);
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        self.inner.on_timer(id, ctx);
    }
}

/// Runs the inner protocol but rewrites every outgoing message through a
/// mangling function — a generic active-Byzantine wrapper.
pub struct Mangler<P, F> {
    inner: P,
    mangle: F,
}

impl<P, F> Mangler<P, F> {
    /// Wraps `inner`; `mangle(to, msg)` transforms (or, returning `None`,
    /// drops) each outgoing message.
    pub fn new(inner: P, mangle: F) -> Self {
        Mangler { inner, mangle }
    }
}

impl<P, F> Protocol for Mangler<P, F>
where
    P: Protocol,
    F: FnMut(NodeId, P::Msg) -> Option<P::Msg>,
{
    type Msg = P::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        self.inner.on_start(ctx);
        self.rewrite(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>) {
        self.inner.on_message(from, msg, ctx);
        self.rewrite(ctx);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Self::Msg>) {
        self.inner.on_timer(id, ctx);
        self.rewrite(ctx);
    }
}

impl<P, F> Mangler<P, F>
where
    P: Protocol,
    F: FnMut(NodeId, P::Msg) -> Option<P::Msg>,
{
    fn rewrite(&mut self, ctx: &mut Context<P::Msg>) {
        let staged = std::mem::take(&mut ctx.outbox);
        for (to, msg) in staged {
            if let Some(m) = (self.mangle)(to, msg) {
                ctx.outbox.push((to, m));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;

    /// Broadcasts 1; outputs the number of messages heard after hearing
    /// from a strict majority.
    struct Counter {
        heard: usize,
    }

    impl Protocol for Counter {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Context<u64>) {
            ctx.broadcast(1);
        }

        fn on_message(&mut self, _from: NodeId, _msg: u64, ctx: &mut Context<u64>) {
            self.heard += 1;
            if self.heard * 2 > ctx.n() {
                ctx.output(vec![self.heard as u8]);
            }
        }
    }

    #[test]
    fn silent_nodes_send_nothing() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
            Box::new(Silent::new()),
        ];
        let report = Simulation::new(nodes, 11).run();
        assert_eq!(report.metrics.sent_by(3), 0);
        // Honest nodes still reach majority (3 of 4 messages).
        for i in 0..3 {
            assert!(report.outputs[i].is_some());
        }
    }

    #[test]
    fn crash_after_limits_participation() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(CrashAfter::new(Counter { heard: 0 }, 1)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 17).run();
        // The crashed node delivered at most 1 message; others complete.
        assert!(report.outputs[1].is_some());
        assert!(report.outputs[2].is_some());
    }

    #[test]
    fn crash_at_zero_is_fully_silent() {
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(CrashAfter::new(Counter { heard: 0 }, 0)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 17).run();
        assert_eq!(report.metrics.sent_by(0), 0);
    }

    #[test]
    fn mangler_corrupts_payloads() {
        // Node 0 lies: doubles every payload it sends.
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Mangler::new(Counter { heard: 0 }, |_to, m: u64| Some(m * 2))),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 23).run();
        // Counter ignores payload values, so all still complete; the point
        // is that mangling does not break the harness.
        assert!(report.outputs.iter().all(|o| o.is_some()));
    }

    #[test]
    fn mangler_can_drop_messages() {
        // Node 0 drops everything it would send.
        let nodes: Vec<Box<dyn Protocol<Msg = u64>>> = vec![
            Box::new(Mangler::new(Counter { heard: 0 }, |_to, _m: u64| None)),
            Box::new(Counter { heard: 0 }),
            Box::new(Counter { heard: 0 }),
        ];
        let report = Simulation::new(nodes, 29).run();
        assert_eq!(report.metrics.sent_by(0), 0);
    }
}
