//! # swiper-net — execution substrates for asynchronous protocols
//!
//! The weighted protocols of the Swiper paper (broadcast, agreement,
//! beacons, SSLE, SMR) are *asynchronous message-passing* protocols. This
//! crate provides the substrates they run on — one [`Protocol`] automaton
//! interface, two interchangeable backends behind the [`Runtime`] seam:
//!
//! * [`Protocol`] — the node automaton interface (`on_start`,
//!   `on_message`, `on_timer`, `on_reconfigure`), object-safe so
//!   heterogeneous behaviours (honest, crashed, Byzantine) can share one
//!   run.
//! * [`Simulation`] — the deterministic backend: a seeded discrete-event
//!   queue with configurable message delays. Same seed, same run: every
//!   execution is exactly reproducible.
//! * [`ThreadedRuntime`] — the deployed backend: worker threads, bounded
//!   links over a pluggable [`Transport`] ([`ChannelTransport`]
//!   in-process, [`SocketTransport`] over real loopback TCP with a
//!   [`WireCodec`] per message type), monotonic-clock timers. Every
//!   run records a [`DeliveryTrace`] that replays on the simulator
//!   substrate bit-identically (the determinism-twin contract).
//! * [`overlay`] — the partial-view gossip dissemination backend:
//!   [`OverlayNode`] wraps any protocol and expands its symbolic
//!   broadcasts into stake-weighted eager/lazy fanout (HyParView views,
//!   Plumtree repair, SWIM-style churn detection feeding the epoch
//!   machinery) instead of full-mesh.
//! * [`adversary`] — generic fault injection: silence, crash-after-k,
//!   and arbitrary message-mangling wrappers.
//! * [`Metrics`] — per-node message/byte counters, the paper's
//!   communication-overhead measurements (Table 1) read these.
//!
//! The layering (Protocol → Runtime → Transport) and the determinism-twin
//! contract are documented in `docs/ARCHITECTURE.md` at the repository
//! root.
//!
//! The asynchronous model matches the paper's: the adversary (here, the
//! delay schedule) may reorder messages arbitrarily but must eventually
//! deliver every message between honest parties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod codec;
mod metrics;
pub mod overlay;
mod runtime;
mod sim;
mod socket;
mod transport;
mod twin;

pub use adversary::AdaptiveDelay;
pub use codec::{
    put_bool, put_slice, put_u32, put_u64, BytesCodec, U64Codec, WireCodec, WireError,
    WireReader,
};
pub use metrics::Metrics;
pub use overlay::{
    ChurnEvent, ChurnLedger, OverlayCodec, OverlayConfig, OverlayMsg, OverlayNode, OverlayStats,
};
pub use runtime::{HistSummary, LatencySummary, RuntimeReport, ThreadedRuntime};
pub use sim::{
    Context, DelayModel, Effects, EpochedSimulation, NodeId, Protocol, RunReport, Simulation,
};
pub use socket::SocketTransport;
pub use transport::{
    ChannelTransport, Delivery, Envelope, Runtime, SendError, SendNodes, Transport,
    DEFAULT_LINK_CAPACITY,
};
pub use twin::{DeliveryTrace, TraceEvent, TwinError};

/// Byte-size accounting for protocol messages (the communication metric).
pub trait MessageSize {
    /// Size of this message on the wire, in bytes.
    fn size_bytes(&self) -> usize;
}

impl MessageSize for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl MessageSize for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl MessageSize for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl MessageSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}
