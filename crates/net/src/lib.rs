//! # swiper-net — a deterministic asynchronous network simulator
//!
//! The weighted protocols of the Swiper paper (broadcast, agreement,
//! beacons, SSLE, SMR) are *asynchronous message-passing* protocols. This
//! crate provides the discrete-event substrate they run on in tests,
//! examples and benchmarks:
//!
//! * [`Protocol`] — the node automaton interface (`on_start`,
//!   `on_message`, `on_timer`), object-safe so heterogeneous behaviours
//!   (honest, crashed, Byzantine) can share one simulation.
//! * [`Simulation`] — a seeded event queue with configurable message
//!   delays. Same seed, same run: every execution is exactly reproducible.
//! * [`adversary`] — generic fault injection: silence, crash-after-k,
//!   and arbitrary message-mangling wrappers.
//! * [`Metrics`] — per-node message/byte counters, the paper's
//!   communication-overhead measurements (Table 1) read these.
//!
//! The asynchronous model matches the paper's: the adversary (here, the
//! delay schedule) may reorder messages arbitrarily but must eventually
//! deliver every message between honest parties.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod metrics;
mod sim;

pub use adversary::AdaptiveDelay;
pub use metrics::Metrics;
pub use sim::{
    Context, DelayModel, Effects, EpochedSimulation, NodeId, Protocol, RunReport, Simulation,
};

/// Byte-size accounting for protocol messages (the communication metric).
pub trait MessageSize {
    /// Size of this message on the wire, in bytes.
    fn size_bytes(&self) -> usize;
}

impl MessageSize for Vec<u8> {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl MessageSize for String {
    fn size_bytes(&self) -> usize {
        self.len()
    }
}

impl MessageSize for u64 {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl MessageSize for () {
    fn size_bytes(&self) -> usize {
        0
    }
}
