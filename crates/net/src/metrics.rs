//! Communication metrics: the measured counterpart of the paper's
//! overhead columns in Table 1.

use serde::{Deserialize, Serialize};

/// Per-node send/delivery counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    sent_messages: Vec<u64>,
    sent_bytes: Vec<u64>,
    delivered_messages: Vec<u64>,
    delivered_bytes: Vec<u64>,
}

impl Metrics {
    /// Zeroed counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            sent_messages: vec![0; n],
            sent_bytes: vec![0; n],
            delivered_messages: vec![0; n],
            delivered_bytes: vec![0; n],
        }
    }

    pub(crate) fn record_send(&mut self, node: usize, bytes: usize) {
        self.sent_messages[node] += 1;
        self.sent_bytes[node] += bytes as u64;
    }

    pub(crate) fn record_delivery(&mut self, node: usize, bytes: usize) {
        self.delivered_messages[node] += 1;
        self.delivered_bytes[node] += bytes as u64;
    }

    /// Adds `other`'s counters into `self`, node by node. The threaded
    /// runtime keeps one `Metrics` per worker (no shared counters on the
    /// hot path) and absorbs them into the run report at shutdown.
    ///
    /// # Panics
    ///
    /// Panics if the two metrics cover different populations.
    pub fn absorb(&mut self, other: &Metrics) {
        assert_eq!(
            self.sent_messages.len(),
            other.sent_messages.len(),
            "cannot absorb metrics for a different population"
        );
        for i in 0..self.sent_messages.len() {
            self.sent_messages[i] += other.sent_messages[i];
            self.sent_bytes[i] += other.sent_bytes[i];
            self.delivered_messages[i] += other.delivered_messages[i];
            self.delivered_bytes[i] += other.delivered_bytes[i];
        }
    }

    /// Messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sent_messages.iter().sum()
    }

    /// Bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Messages delivered across all nodes (sent minus still-in-flight /
    /// dropped-by-halt).
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages.iter().sum()
    }

    /// Bytes delivered across all nodes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes.iter().sum()
    }

    /// Messages sent by one node.
    pub fn sent_by(&self, node: usize) -> u64 {
        self.sent_messages[node]
    }

    /// Bytes sent by one node.
    pub fn bytes_sent_by(&self, node: usize) -> u64 {
        self.sent_bytes[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(2);
        m.record_send(0, 10);
        m.record_send(0, 5);
        m.record_send(1, 1);
        m.record_delivery(1, 10);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 16);
        assert_eq!(m.delivered_messages(), 1);
        assert_eq!(m.delivered_bytes(), 10);
        assert_eq!(m.sent_by(0), 2);
        assert_eq!(m.bytes_sent_by(0), 15);
    }

    #[test]
    fn absorb_merges_per_node() {
        let mut a = Metrics::new(2);
        a.record_send(0, 4);
        a.record_delivery(1, 4);
        let mut b = Metrics::new(2);
        b.record_send(0, 6);
        b.record_send(1, 1);
        b.record_delivery(0, 6);
        a.absorb(&b);
        assert_eq!(a.sent_by(0), 2);
        assert_eq!(a.bytes_sent_by(0), 10);
        assert_eq!(a.sent_by(1), 1);
        assert_eq!(a.total_messages(), 3);
        assert_eq!(a.delivered_messages(), 2);
        assert_eq!(a.delivered_bytes(), 10);
    }

    #[test]
    #[should_panic(expected = "different population")]
    fn absorb_rejects_population_mismatch() {
        let mut a = Metrics::new(2);
        a.absorb(&Metrics::new(3));
    }
}
