//! Communication metrics: the measured counterpart of the paper's
//! overhead columns in Table 1.

use serde::{Deserialize, Serialize};

/// Per-node send/delivery counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    sent_messages: Vec<u64>,
    sent_bytes: Vec<u64>,
    delivered_messages: Vec<u64>,
    delivered_bytes: Vec<u64>,
}

impl Metrics {
    /// Zeroed counters for `n` nodes.
    pub fn new(n: usize) -> Self {
        Metrics {
            sent_messages: vec![0; n],
            sent_bytes: vec![0; n],
            delivered_messages: vec![0; n],
            delivered_bytes: vec![0; n],
        }
    }

    pub(crate) fn record_send(&mut self, node: usize, bytes: usize) {
        self.sent_messages[node] += 1;
        self.sent_bytes[node] += bytes as u64;
    }

    pub(crate) fn record_delivery(&mut self, node: usize, bytes: usize) {
        self.delivered_messages[node] += 1;
        self.delivered_bytes[node] += bytes as u64;
    }

    /// Messages sent across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sent_messages.iter().sum()
    }

    /// Bytes sent across all nodes.
    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Messages delivered across all nodes (sent minus still-in-flight /
    /// dropped-by-halt).
    pub fn delivered_messages(&self) -> u64 {
        self.delivered_messages.iter().sum()
    }

    /// Bytes delivered across all nodes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes.iter().sum()
    }

    /// Messages sent by one node.
    pub fn sent_by(&self, node: usize) -> u64 {
        self.sent_messages[node]
    }

    /// Bytes sent by one node.
    pub fn bytes_sent_by(&self, node: usize) -> u64 {
        self.sent_bytes[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new(2);
        m.record_send(0, 10);
        m.record_send(0, 5);
        m.record_send(1, 1);
        m.record_delivery(1, 10);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 16);
        assert_eq!(m.delivered_messages(), 1);
        assert_eq!(m.delivered_bytes(), 10);
        assert_eq!(m.sent_by(0), 2);
        assert_eq!(m.bytes_sent_by(0), 15);
    }
}
