//! Dense linear algebra over a generic field — just enough Gaussian
//! elimination for Welch–Berlekamp decoding.

use swiper_field::Field;

/// Solves `A x = b` for square `A` by Gaussian elimination with partial
/// pivoting (any non-zero pivot works over a field).
///
/// Rank-deficient systems are handled by assigning zero to free variables;
/// the candidate is verified against the original system and `None` is
/// returned when inconsistent.
///
/// # Panics
///
/// Panics if `a` is not square or `b` has mismatched length.
#[allow(clippy::needless_range_loop)] // index-centric Gaussian elimination
pub fn solve<F: Field>(a: &[Vec<F>], b: &[F]) -> Option<Vec<F>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut m: Vec<Vec<F>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();

    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
    let mut row = 0;
    for col in 0..n {
        // Find a pivot at or below `row`.
        let Some(p) = (row..n).find(|&r| !m[r][col].is_zero()) else {
            continue;
        };
        m.swap(row, p);
        let inv = m[row][col].inv().expect("pivot is non-zero");
        for j in col..=n {
            m[row][j] = m[row][j] * inv;
        }
        for r in 0..n {
            if r != row && !m[r][col].is_zero() {
                let factor = m[r][col];
                for j in col..=n {
                    let sub = factor * m[row][j];
                    m[r][j] = m[r][j] - sub;
                }
            }
        }
        pivot_of_col[col] = Some(row);
        row += 1;
        if row == n {
            break;
        }
    }

    // Back-substitute: pivot columns take the reduced rhs, free columns 0.
    let mut x = vec![F::ZERO; n];
    for col in 0..n {
        if let Some(r) = pivot_of_col[col] {
            x[col] = m[r][n];
        }
    }
    // Verify (covers the rank-deficient/inconsistent case).
    for (row_a, &rhs) in a.iter().zip(b) {
        let mut acc = F::ZERO;
        for (j, &coeff) in row_a.iter().enumerate() {
            acc = acc + coeff * x[j];
        }
        if acc != rhs {
            return None;
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use swiper_field::F61;

    fn f(v: u64) -> F61 {
        F61::new(v)
    }

    #[test]
    fn solves_2x2() {
        // x + y = 5; x - y = 1  ->  x = 3, y = 2.
        let a = vec![vec![f(1), f(1)], vec![f(1), -f(1)]];
        let b = vec![f(5), f(1)];
        assert_eq!(solve(&a, &b).unwrap(), vec![f(3), f(2)]);
    }

    #[test]
    fn detects_inconsistent() {
        // x + y = 1; x + y = 2.
        let a = vec![vec![f(1), f(1)], vec![f(1), f(1)]];
        assert!(solve(&a, &[f(1), f(2)]).is_none());
    }

    #[test]
    fn underdetermined_consistent_picks_a_solution() {
        // x + y = 3 (twice): free variable set to zero -> x = 3, y = 0.
        let a = vec![vec![f(1), f(1)], vec![f(1), f(1)]];
        let x = solve(&a, &[f(3), f(3)]).unwrap();
        assert_eq!(x[0] + x[1], f(3));
    }

    #[test]
    fn identity_matrix() {
        let n = 5;
        let a: Vec<Vec<F61>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { F61::ONE } else { F61::ZERO }).collect())
            .collect();
        let b: Vec<F61> = (0..n as u64).map(f).collect();
        assert_eq!(solve(&a, &b).unwrap(), b);
    }

    proptest! {
        #[test]
        fn random_invertible_systems_round_trip(
            seed in proptest::collection::vec(1u64..1_000_000, 9),
            xs in proptest::collection::vec(0u64..1_000_000, 3),
        ) {
            // Build A from the seed; skip singular draws by checking the
            // verification path (solve returns Some iff consistent).
            let a: Vec<Vec<F61>> = (0..3)
                .map(|i| (0..3).map(|j| f(seed[i * 3 + j])).collect())
                .collect();
            let x: Vec<F61> = xs.into_iter().map(f).collect();
            let b: Vec<F61> = (0..3)
                .map(|i| {
                    let mut acc = F61::ZERO;
                    for j in 0..3 {
                        acc = acc + a[i][j] * x[j];
                    }
                    acc
                })
                .collect();
            // A x = b is consistent by construction, so solve must succeed
            // and its answer must satisfy the system.
            let got = solve(&a, &b).expect("consistent system");
            for i in 0..3 {
                let mut acc = F61::ZERO;
                for j in 0..3 {
                    acc = acc + a[i][j] * got[j];
                }
                prop_assert_eq!(acc, b[i]);
            }
        }
    }
}
