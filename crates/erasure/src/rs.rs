//! Systematic Reed–Solomon codes, generic over the field.
//!
//! The message is a vector of `k` field elements; the codeword is the
//! evaluation of the unique interpolating polynomial of degree `< k` at `m`
//! standard points, the first `k` of which carry the message verbatim
//! (systematic form). Erasure decoding interpolates through any `k`
//! surviving fragments; error decoding uses Welch–Berlekamp.

use swiper_field::{poly, Field};

use crate::error::CodeError;
use crate::linalg;

/// The result of an error-correcting decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome<F> {
    /// The recovered message (`k` symbols).
    pub message: Vec<F>,
    /// Indices of fragments identified as corrupted.
    pub corrected: Vec<usize>,
}

/// A systematic `(k, m)` Reed–Solomon code over field `F`.
///
/// # Examples
///
/// ```
/// use swiper_erasure::ReedSolomon;
/// use swiper_field::F61;
///
/// # fn main() -> Result<(), swiper_erasure::CodeError> {
/// let rs: ReedSolomon<F61> = ReedSolomon::new(3, 7)?;
/// let msg: Vec<F61> = [10u64, 20, 30].iter().map(|&v| F61::new(v)).collect();
/// let frags = rs.encode(&msg)?;
///
/// // Lose any 4 fragments and reconstruct from the remaining 3.
/// let mut partial: Vec<Option<F61>> = frags.iter().map(|&f| Some(f)).collect();
/// partial[0] = None; partial[2] = None; partial[4] = None; partial[6] = None;
/// assert_eq!(rs.decode_erasures(&partial)?, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReedSolomon<F> {
    k: usize,
    m: usize,
    /// Cached evaluation points `x_0..x_{m-1}`.
    points: Vec<F>,
}

impl<F: Field> ReedSolomon<F> {
    /// Creates a `(k, m)` code: `m` fragments, any `k` reconstruct.
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] when `k == 0`, `k > m`, or the field
    /// has fewer than `m` distinct non-zero points.
    pub fn new(k: usize, m: usize) -> Result<Self, CodeError> {
        if k == 0 || k > m {
            return Err(CodeError::InvalidParameters {
                what: format!("need 0 < k <= m, got k={k}, m={m}"),
            });
        }
        if (m as u128) + 1 > F::ORDER {
            return Err(CodeError::InvalidParameters {
                what: format!("field of order {} cannot host {m} fragments", F::ORDER),
            });
        }
        let points = (0..m).map(F::eval_point).collect();
        Ok(ReedSolomon { k, m, points })
    }

    /// Reconstruction threshold `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of fragments `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Code rate `k / m` as an `(k, m)` pair (exact).
    pub fn rate(&self) -> (usize, usize) {
        (self.k, self.m)
    }

    /// Encodes a `k`-symbol message into `m` fragments (systematic: the
    /// first `k` fragments equal the message).
    ///
    /// # Errors
    ///
    /// [`CodeError::InvalidParameters`] when `message.len() != k`.
    pub fn encode(&self, message: &[F]) -> Result<Vec<F>, CodeError> {
        if message.len() != self.k {
            return Err(CodeError::InvalidParameters {
                what: format!("message length {} != k = {}", message.len(), self.k),
            });
        }
        // Interpolate the degree < k polynomial through the first k points.
        let pts: Vec<(F, F)> =
            self.points[..self.k].iter().copied().zip(message.iter().copied()).collect();
        let coeffs = poly::interpolate(&pts);
        let mut frags = message.to_vec();
        for &x in &self.points[self.k..] {
            frags.push(poly::eval(&coeffs, x));
        }
        Ok(frags)
    }

    /// Decodes from fragments with *erasures only*: `fragments[i]` is
    /// `Some` when fragment `i` was received. Any `k` fragments suffice.
    ///
    /// # Errors
    ///
    /// * [`CodeError::InvalidParameters`] on length mismatch.
    /// * [`CodeError::NotEnoughFragments`] with fewer than `k` fragments.
    pub fn decode_erasures(&self, fragments: &[Option<F>]) -> Result<Vec<F>, CodeError> {
        let pts = self.present(fragments)?;
        let use_pts = &pts[..self.k];
        // Fast path: if the first k fragments are all present they ARE the
        // message (systematic code).
        if use_pts.iter().enumerate().all(|(i, &(x, _))| x == self.points[i]) {
            return Ok(use_pts.iter().map(|&(_, y)| y).collect());
        }
        let coeffs = poly::interpolate(use_pts);
        Ok(self.message_from_coeffs(&coeffs))
    }

    /// Like [`ReedSolomon::decode_erasures`] but additionally verifies that
    /// **all** received fragments are consistent with the reconstruction,
    /// turning silent corruption into [`CodeError::DecodingFailed`].
    ///
    /// # Errors
    ///
    /// As [`ReedSolomon::decode_erasures`], plus [`CodeError::DecodingFailed`]
    /// when any received fragment disagrees with the interpolation.
    pub fn decode_erasures_checked(
        &self,
        fragments: &[Option<F>],
    ) -> Result<Vec<F>, CodeError> {
        let pts = self.present(fragments)?;
        let coeffs = poly::interpolate(&pts[..self.k]);
        if poly::degree(&coeffs).is_some_and(|d| d >= self.k) {
            return Err(CodeError::DecodingFailed);
        }
        for &(x, y) in &pts[self.k..] {
            if poly::eval(&coeffs, x) != y {
                return Err(CodeError::DecodingFailed);
            }
        }
        Ok(self.message_from_coeffs(&coeffs))
    }

    /// Welch–Berlekamp decoding tolerating up to `max_errors` corrupted
    /// fragments among the received ones. Requires at least
    /// `k + 2 * max_errors` received fragments; uses exactly that many (the
    /// first ones in index order).
    ///
    /// # Errors
    ///
    /// * [`CodeError::NotEnoughFragments`] with fewer than `k + 2e`.
    /// * [`CodeError::DecodingFailed`] when more than `max_errors` of the
    ///   used fragments are corrupt (or the fragment set is inconsistent).
    pub fn decode_errors(
        &self,
        fragments: &[Option<F>],
        max_errors: usize,
    ) -> Result<DecodeOutcome<F>, CodeError> {
        let pts = self.present(fragments)?;
        let needed = self.k + 2 * max_errors;
        if pts.len() < needed {
            return Err(CodeError::NotEnoughFragments { needed, have: pts.len() });
        }
        let use_pts = &pts[..needed];
        let p_coeffs = if max_errors == 0 {
            poly::interpolate(&pts[..self.k])
        } else {
            self.welch_berlekamp(use_pts, max_errors)?
        };
        if poly::degree(&p_coeffs).is_some_and(|d| d >= self.k) {
            return Err(CodeError::DecodingFailed);
        }
        // The error budget applies to the solve window; a wrong window
        // solution shows up as > e mismatches there.
        let in_window = use_pts.iter().filter(|&&(x, y)| poly::eval(&p_coeffs, x) != y).count();
        if in_window > max_errors {
            return Err(CodeError::DecodingFailed);
        }
        // Report every received fragment inconsistent with the decoded
        // polynomial (inside or outside the window).
        let corrected: Vec<usize> = pts
            .iter()
            .filter(|&&(x, y)| poly::eval(&p_coeffs, x) != y)
            .map(|&(x, _)| self.index_of_point(x))
            .collect();
        Ok(DecodeOutcome { message: self.message_from_coeffs(&p_coeffs), corrected })
    }

    /// Solves the Welch–Berlekamp key equation on exactly `k + 2e` points,
    /// returning the message polynomial `P = Q / E`.
    fn welch_berlekamp(&self, use_pts: &[(F, F)], e: usize) -> Result<Vec<F>, CodeError> {
        let nq = self.k + e; // unknown coefficients of Q = P * E
        let nvars = nq + e; // plus e non-monic coefficients of E

        // Equation per point: Q(x) - y * (E(x) - x^e) = y * x^e
        //   sum_j q_j x^j - y * sum_{j<e} e_j x^j = y * x^e.
        let mut a = Vec::with_capacity(use_pts.len());
        let mut b = Vec::with_capacity(use_pts.len());
        for &(x, y) in use_pts {
            let mut row = vec![F::ZERO; nvars];
            let mut xp = F::ONE;
            for q_col in row.iter_mut().take(nq) {
                *q_col = xp;
                xp = xp * x;
            }
            let mut xp = F::ONE;
            for j in 0..e {
                row[nq + j] = -(y * xp);
                xp = xp * x;
            }
            // x^e:
            let xe = x.pow(e as u64);
            a.push(row);
            b.push(y * xe);
        }
        // Square system: nvars = k + 2e = #points used.
        let x = linalg::solve(&a, &b).ok_or(CodeError::DecodingFailed)?;
        let q_coeffs: Vec<F> = x[..nq].to_vec();
        let mut e_coeffs: Vec<F> = x[nq..].to_vec();
        e_coeffs.push(F::ONE); // monic x^e term

        let (p_coeffs, rem) = poly::div_rem(&q_coeffs, &e_coeffs);
        if !rem.is_empty() {
            return Err(CodeError::DecodingFailed);
        }
        Ok(p_coeffs)
    }

    /// Received `(x, y)` pairs in fragment-index order.
    fn present(&self, fragments: &[Option<F>]) -> Result<Vec<(F, F)>, CodeError> {
        if fragments.len() != self.m {
            return Err(CodeError::InvalidParameters {
                what: format!("fragment vector length {} != m = {}", fragments.len(), self.m),
            });
        }
        let pts: Vec<(F, F)> = fragments
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|y| (self.points[i], y)))
            .collect();
        if pts.len() < self.k {
            return Err(CodeError::NotEnoughFragments { needed: self.k, have: pts.len() });
        }
        Ok(pts)
    }

    fn message_from_coeffs(&self, coeffs: &[F]) -> Vec<F> {
        self.points[..self.k].iter().map(|&x| poly::eval(coeffs, x)).collect()
    }

    fn index_of_point(&self, x: F) -> usize {
        self.points.iter().position(|&p| p == x).expect("point belongs to the code")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use swiper_field::{Gf256, F61};

    fn msg61(vals: &[u64]) -> Vec<F61> {
        vals.iter().map(|&v| F61::new(v)).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::<F61>::new(0, 5).is_err());
        assert!(ReedSolomon::<F61>::new(6, 5).is_err());
        assert!(ReedSolomon::<Gf256>::new(3, 256).is_err());
        assert!(ReedSolomon::<Gf256>::new(3, 255).is_ok());
    }

    #[test]
    fn systematic_prefix() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(4, 9).unwrap();
        let msg = msg61(&[1, 2, 3, 4]);
        let frags = rs.encode(&msg).unwrap();
        assert_eq!(&frags[..4], msg.as_slice());
        assert_eq!(frags.len(), 9);
    }

    #[test]
    fn any_k_fragments_reconstruct() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 7).unwrap();
        let msg = msg61(&[11, 22, 33]);
        let frags = rs.encode(&msg).unwrap();
        // Every 3-subset of the 7 fragments reconstructs.
        for a in 0..7 {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    let mut partial = vec![None; 7];
                    for &i in &[a, b, c] {
                        partial[i] = Some(frags[i]);
                    }
                    assert_eq!(rs.decode_erasures(&partial).unwrap(), msg, "{a},{b},{c}");
                }
            }
        }
    }

    #[test]
    fn too_few_fragments_rejected() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 7).unwrap();
        let msg = msg61(&[1, 2, 3]);
        let frags = rs.encode(&msg).unwrap();
        let mut partial = vec![None; 7];
        partial[1] = Some(frags[1]);
        partial[5] = Some(frags[5]);
        assert!(matches!(
            rs.decode_erasures(&partial),
            Err(CodeError::NotEnoughFragments { needed: 3, have: 2 })
        ));
    }

    #[test]
    fn checked_decode_catches_corruption() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 7).unwrap();
        let msg = msg61(&[5, 6, 7]);
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        frags[6] = Some(F61::new(999_999)); // corrupt a parity fragment
        assert!(matches!(rs.decode_erasures_checked(&frags), Err(CodeError::DecodingFailed)));
    }

    #[test]
    fn corrects_errors_within_budget() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 9).unwrap();
        let msg = msg61(&[100, 200, 300]);
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        // 2 corruptions, budget (9 - 3) / 2 = 3 >= 2.
        frags[1] = Some(F61::new(777));
        frags[4] = Some(F61::new(888));
        let out = rs.decode_errors(&frags, 2).unwrap();
        assert_eq!(out.message, msg);
        assert_eq!(out.corrected, vec![1, 4]);
    }

    #[test]
    fn error_decoding_with_erasures_and_errors() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 10).unwrap();
        let msg = msg61(&[42, 43, 44]);
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        frags[0] = None; // erasure
        frags[9] = None; // erasure
        frags[2] = Some(F61::new(1)); // error

        // 8 fragments present, k + 2e = 3 + 2*2 = 7 <= 8.
        let out = rs.decode_errors(&frags, 2).unwrap();
        assert_eq!(out.message, msg);
        assert_eq!(out.corrected, vec![2]);
    }

    #[test]
    fn too_many_errors_fail_cleanly() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(3, 9).unwrap();
        let msg = msg61(&[1, 2, 3]);
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        // 4 corruptions but budget 2: decoding must not silently return
        // garbage. (It either fails or—if the corruption happens to form a
        // consistent codeword—returns a different message; with these fixed
        // values it fails.)
        for i in [0usize, 2, 5, 7] {
            frags[i] = Some(F61::new(31_337 + i as u64));
        }
        match rs.decode_errors(&frags, 2) {
            Err(CodeError::DecodingFailed) => {}
            Ok(out) => assert_ne!(out.message, msg, "must not claim the original message"),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn zero_error_budget_uses_window_and_reports_outliers() {
        let rs: ReedSolomon<F61> = ReedSolomon::new(2, 4).unwrap();
        let msg = msg61(&[9, 8]);
        let mut frags: Vec<Option<F61>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        assert_eq!(rs.decode_errors(&frags, 0).unwrap().message, msg);
        // Corruption outside the k-point solve window: decode still
        // succeeds (window is clean) and the outlier is reported.
        frags[3] = Some(F61::new(123));
        let out = rs.decode_errors(&frags, 0).unwrap();
        assert_eq!(out.message, msg);
        assert_eq!(out.corrected, vec![3]);
        // Corruption inside the k-point window with zero budget: the
        // interpolation fits the corrupt point exactly, yielding a *wrong*
        // message — the reason online error correction always pairs
        // decoding with a hash check (Section 5.2).
        frags[3] = None;
        frags[0] = Some(F61::new(321));
        let out = rs.decode_errors(&frags, 0).unwrap();
        assert_ne!(out.message, msg);
    }

    #[test]
    fn works_over_gf256() {
        let rs: ReedSolomon<Gf256> = ReedSolomon::new(4, 12).unwrap();
        let msg: Vec<Gf256> =
            vec![0x01, 0x80, 0xFF, 0x42].into_iter().map(Gf256::new).collect();
        let mut frags: Vec<Option<Gf256>> =
            rs.encode(&msg).unwrap().into_iter().map(Some).collect();
        frags[0] = None;
        frags[7] = Some(Gf256::new(0x13));
        let out = rs.decode_errors(&frags, 2).unwrap();
        assert_eq!(out.message, msg);
        assert_eq!(out.corrected, vec![7]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn random_erasures_round_trip(
            msg in proptest::collection::vec(0u64..1_000_000, 1..6),
            extra in 0usize..8,
            seed in any::<u64>(),
        ) {
            let k = msg.len();
            let m = k + extra;
            let rs: ReedSolomon<F61> = ReedSolomon::new(k, m).unwrap();
            let message = msg61(&msg);
            let frags = rs.encode(&message).unwrap();
            // Keep a random k-subset.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut idx: Vec<usize> = (0..m).collect();
            idx.shuffle(&mut rng);
            let mut partial = vec![None; m];
            for &i in idx.iter().take(k) {
                partial[i] = Some(frags[i]);
            }
            prop_assert_eq!(rs.decode_erasures(&partial).unwrap(), message);
        }

        #[test]
        fn random_errors_round_trip(
            msg in proptest::collection::vec(0u64..1_000_000, 1..5),
            e in 0usize..3,
            seed in any::<u64>(),
        ) {
            let k = msg.len();
            let m = k + 2 * e + 2;
            let rs: ReedSolomon<F61> = ReedSolomon::new(k, m).unwrap();
            let message = msg61(&msg);
            let mut frags: Vec<Option<F61>> =
                rs.encode(&message).unwrap().into_iter().map(Some).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut idx: Vec<usize> = (0..m).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(e) {
                // Flip to a guaranteed-different value.
                let old = frags[i].unwrap();
                frags[i] = Some(old + F61::ONE);
            }
            let out = rs.decode_errors(&frags, e).unwrap();
            prop_assert_eq!(out.message, message);
            prop_assert_eq!(out.corrected.len(), e);
        }
    }
}
