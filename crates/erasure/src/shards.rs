//! Byte-oriented sharding on top of the symbol-level Reed–Solomon code.
//!
//! Protocols disseminate byte blobs, not field elements. This module stripes
//! a blob across `m` shards over `F_{2^61-1}` so that any `k` shards
//! reconstruct it. Message symbols pack 7 bytes each (56 bits, comfortably
//! below the 61-bit modulus); parity symbols are stored as 8-byte
//! little-endian words. An 8-byte length prefix makes padding unambiguous.
//!
//! `F_{2^61-1}` is used rather than `GF(2^8)` because the weighted protocols
//! need `m = T` fragments where `T` is a ticket total that routinely
//! exceeds 255 (Table 2 of the paper reaches tens of thousands).

use serde::{Deserialize, Serialize};
use swiper_field::{Field, F61};

use crate::error::CodeError;
use crate::rs::ReedSolomon;

/// Bytes carried per message symbol.
const PACK: usize = 7;
/// Bytes used to store one (possibly full-width) symbol inside a shard.
const SYMBOL_BYTES: usize = 8;

/// One fragment of an erasure-coded blob.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Fragment index in `0..m`.
    pub index: u32,
    /// Packed symbol data (8 bytes per stripe).
    pub data: Vec<u8>,
}

impl Shard {
    /// Number of symbols in this shard.
    pub fn symbols(&self) -> usize {
        self.data.len() / SYMBOL_BYTES
    }

    /// Size in bytes (the paper's communication metric counts these).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the shard carries no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Packs `data` (with a length prefix) into message symbols.
fn to_symbols(data: &[u8]) -> Vec<F61> {
    let mut framed = Vec::with_capacity(8 + data.len() + PACK);
    framed.extend_from_slice(&(data.len() as u64).to_le_bytes());
    framed.extend_from_slice(data);
    while framed.len() % PACK != 0 {
        framed.push(0);
    }
    framed
        .chunks(PACK)
        .map(|chunk| {
            let mut buf = [0u8; 8];
            buf[..PACK].copy_from_slice(chunk);
            F61::new(u64::from_le_bytes(buf))
        })
        .collect()
}

/// Unpacks symbols back into the original blob.
fn from_symbols(symbols: &[F61]) -> Result<Vec<u8>, CodeError> {
    let mut bytes = Vec::with_capacity(symbols.len() * PACK);
    for s in symbols {
        let v = s.value();
        if v >= 1u64 << 56 {
            return Err(CodeError::MalformedShard);
        }
        bytes.extend_from_slice(&v.to_le_bytes()[..PACK]);
    }
    if bytes.len() < 8 {
        return Err(CodeError::MalformedShard);
    }
    let len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    if bytes.len() < 8 + len {
        return Err(CodeError::MalformedShard);
    }
    Ok(bytes[8..8 + len].to_vec())
}

/// Packs a blob into message symbols (length-prefixed, zero-padded to a
/// multiple of `k` symbols) — the single-stripe layout used by the
/// error-corrected broadcast, where whole-symbol fragments are what the
/// Welch–Berlekamp decoder corrects.
///
/// # Errors
///
/// [`CodeError::InvalidParameters`] when `k == 0`.
pub fn pack_symbols(data: &[u8], k: usize) -> Result<Vec<F61>, CodeError> {
    if k == 0 {
        return Err(CodeError::InvalidParameters { what: "k must be positive".into() });
    }
    let mut symbols = to_symbols(data);
    while !symbols.len().is_multiple_of(k) {
        symbols.push(F61::ZERO);
    }
    Ok(symbols)
}

/// Inverse of [`pack_symbols`]: recovers the blob from message symbols.
///
/// # Errors
///
/// [`CodeError::MalformedShard`] when the symbols do not carry a valid
/// length-prefixed payload.
pub fn unpack_symbols(symbols: &[F61]) -> Result<Vec<u8>, CodeError> {
    from_symbols(symbols)
}

/// Encodes a blob into `m` shards, any `k` of which reconstruct it.
///
/// # Errors
///
/// [`CodeError::InvalidParameters`] for bad `(k, m)`.
pub fn encode_bytes(data: &[u8], k: usize, m: usize) -> Result<Vec<Shard>, CodeError> {
    let rs: ReedSolomon<F61> = ReedSolomon::new(k, m)?;
    let mut symbols = to_symbols(data);
    while !symbols.len().is_multiple_of(k) {
        symbols.push(F61::ZERO);
    }
    let stripes = symbols.len() / k;
    let mut shards: Vec<Shard> = (0..m)
        .map(|i| Shard { index: i as u32, data: Vec::with_capacity(stripes * SYMBOL_BYTES) })
        .collect();
    for stripe in symbols.chunks(k) {
        let frags = rs.encode(stripe)?;
        for (shard, frag) in shards.iter_mut().zip(&frags) {
            shard.data.extend_from_slice(&frag.value().to_le_bytes());
        }
    }
    Ok(shards)
}

/// Reconstructs the blob from at least `k` shards (erasures only).
///
/// # Errors
///
/// * [`CodeError::NotEnoughFragments`] with fewer than `k` distinct shards.
/// * [`CodeError::BadFragmentIndex`] for an index `>= m`.
/// * [`CodeError::MalformedShard`] for inconsistent shard lengths/payloads.
pub fn decode_bytes(shards: &[Shard], k: usize, m: usize) -> Result<Vec<u8>, CodeError> {
    let rs: ReedSolomon<F61> = ReedSolomon::new(k, m)?;
    let mut seen: Vec<Option<&Shard>> = vec![None; m];
    let mut distinct = 0;
    for s in shards {
        let idx = s.index as usize;
        if idx >= m {
            return Err(CodeError::BadFragmentIndex { index: idx });
        }
        if seen[idx].is_none() {
            seen[idx] = Some(s);
            distinct += 1;
        }
    }
    if distinct < k {
        return Err(CodeError::NotEnoughFragments { needed: k, have: distinct });
    }
    let stripe_len = shards[0].data.len();
    if !stripe_len.is_multiple_of(SYMBOL_BYTES)
        || shards.iter().any(|s| s.data.len() != stripe_len)
    {
        return Err(CodeError::MalformedShard);
    }
    let stripes = stripe_len / SYMBOL_BYTES;
    let mut symbols: Vec<F61> = Vec::with_capacity(stripes * k);
    for stripe in 0..stripes {
        let mut frags: Vec<Option<F61>> = vec![None; m];
        for (i, slot) in seen.iter().enumerate() {
            if let Some(s) = slot {
                let off = stripe * SYMBOL_BYTES;
                let word =
                    u64::from_le_bytes(s.data[off..off + SYMBOL_BYTES].try_into().expect("8"));
                if u128::from(word) >= F61::ORDER {
                    return Err(CodeError::MalformedShard);
                }
                frags[i] = Some(F61::new(word));
            }
        }
        symbols.extend(rs.decode_erasures(&frags)?);
    }
    from_symbols(&symbols)
}

/// Encodes a blob into `m` shards over `GF(2^8)` — one byte per symbol, no
/// storage expansion (vs the 8/7 of the `F61` layout), limited to
/// `m <= 255` fragments. Preferable for *nominal* instantiations where
/// `m = n` is small; weighted instantiations usually need the `F61` path.
///
/// # Errors
///
/// [`CodeError::InvalidParameters`] for bad `(k, m)` (including `m > 255`).
pub fn encode_bytes_gf256(data: &[u8], k: usize, m: usize) -> Result<Vec<Shard>, CodeError> {
    use swiper_field::Gf256;
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(k, m)?;
    // Frame: 8-byte length prefix, zero-padded to a multiple of k.
    let mut framed = Vec::with_capacity(8 + data.len() + k);
    framed.extend_from_slice(&(data.len() as u64).to_le_bytes());
    framed.extend_from_slice(data);
    while !framed.len().is_multiple_of(k) {
        framed.push(0);
    }
    let stripes = framed.len() / k;
    let mut shards: Vec<Shard> =
        (0..m).map(|i| Shard { index: i as u32, data: Vec::with_capacity(stripes) }).collect();
    for stripe in framed.chunks(k) {
        let symbols: Vec<Gf256> = stripe.iter().map(|&b| Gf256::new(b)).collect();
        let frags = rs.encode(&symbols)?;
        for (shard, frag) in shards.iter_mut().zip(&frags) {
            shard.data.push(frag.byte());
        }
    }
    Ok(shards)
}

/// Reconstructs a blob encoded with [`encode_bytes_gf256`] from at least
/// `k` distinct shards.
///
/// # Errors
///
/// As [`decode_bytes`].
pub fn decode_bytes_gf256(shards: &[Shard], k: usize, m: usize) -> Result<Vec<u8>, CodeError> {
    use swiper_field::Gf256;
    let rs: ReedSolomon<Gf256> = ReedSolomon::new(k, m)?;
    let mut seen: Vec<Option<&Shard>> = vec![None; m];
    let mut distinct = 0;
    for s in shards {
        let idx = s.index as usize;
        if idx >= m {
            return Err(CodeError::BadFragmentIndex { index: idx });
        }
        if seen[idx].is_none() {
            seen[idx] = Some(s);
            distinct += 1;
        }
    }
    if distinct < k {
        return Err(CodeError::NotEnoughFragments { needed: k, have: distinct });
    }
    let stripes = shards[0].data.len();
    if shards.iter().any(|s| s.data.len() != stripes) {
        return Err(CodeError::MalformedShard);
    }
    let mut bytes = Vec::with_capacity(stripes * k);
    for stripe in 0..stripes {
        let mut frags: Vec<Option<Gf256>> = vec![None; m];
        for (i, slot) in seen.iter().enumerate() {
            if let Some(s) = slot {
                frags[i] = Some(Gf256::new(s.data[stripe]));
            }
        }
        bytes.extend(rs.decode_erasures(&frags)?.into_iter().map(|g| g.byte()));
    }
    if bytes.len() < 8 {
        return Err(CodeError::MalformedShard);
    }
    let len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
    if bytes.len() < 8 + len {
        return Err(CodeError::MalformedShard);
    }
    Ok(bytes[8..8 + len].to_vec())
}

/// Reconstruction that additionally cross-checks *all* supplied shards
/// against the interpolated polynomial, failing loudly on corruption.
///
/// # Errors
///
/// As [`decode_bytes`], plus [`CodeError::DecodingFailed`] when any supplied
/// shard is inconsistent with the reconstruction.
pub fn decode_bytes_checked(
    shards: &[Shard],
    k: usize,
    m: usize,
) -> Result<Vec<u8>, CodeError> {
    let rs: ReedSolomon<F61> = ReedSolomon::new(k, m)?;
    let mut seen: Vec<Option<&Shard>> = vec![None; m];
    for s in shards {
        let idx = s.index as usize;
        if idx >= m {
            return Err(CodeError::BadFragmentIndex { index: idx });
        }
        seen[idx].get_or_insert(s);
    }
    let stripe_len =
        shards.first().ok_or(CodeError::NotEnoughFragments { needed: k, have: 0 })?.data.len();
    if stripe_len % SYMBOL_BYTES != 0 || shards.iter().any(|s| s.data.len() != stripe_len) {
        return Err(CodeError::MalformedShard);
    }
    let stripes = stripe_len / SYMBOL_BYTES;
    let mut symbols: Vec<F61> = Vec::with_capacity(stripes * k);
    for stripe in 0..stripes {
        let mut frags: Vec<Option<F61>> = vec![None; m];
        for (i, slot) in seen.iter().enumerate() {
            if let Some(s) = slot {
                let off = stripe * SYMBOL_BYTES;
                let word =
                    u64::from_le_bytes(s.data[off..off + SYMBOL_BYTES].try_into().expect("8"));
                if u128::from(word) >= F61::ORDER {
                    return Err(CodeError::MalformedShard);
                }
                frags[i] = Some(F61::new(word));
            }
        }
        symbols.extend(rs.decode_erasures_checked(&frags)?);
    }
    from_symbols(&symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn round_trip_simple() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let shards = encode_bytes(data, 3, 7).unwrap();
        assert_eq!(shards.len(), 7);
        let got = decode_bytes(&shards[2..5], 3, 7).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn round_trip_empty_and_tiny() {
        for data in [&b""[..], &b"x"[..], &b"ab"[..]] {
            let shards = encode_bytes(data, 2, 5).unwrap();
            let got = decode_bytes(&shards[3..5], 2, 5).unwrap();
            assert_eq!(got, data);
        }
    }

    #[test]
    fn shards_are_much_smaller_than_blob() {
        // The whole point of IDA (paper Section 5.1): each fragment is
        // ~|M|/k, not |M|.
        let data = vec![0xAB; 70_000];
        let k = 10;
        let shards = encode_bytes(&data, k, 30).unwrap();
        let per_shard = shards[0].len();
        // 8/7 storage expansion plus framing, divided by k.
        assert!(per_shard < data.len() / k * 2, "shard size {per_shard}");
    }

    #[test]
    fn insufficient_shards_fail() {
        let shards = encode_bytes(b"hello world", 3, 6).unwrap();
        assert!(matches!(
            decode_bytes(&shards[..2], 3, 6),
            Err(CodeError::NotEnoughFragments { needed: 3, have: 2 })
        ));
    }

    #[test]
    fn duplicate_shards_do_not_count_twice() {
        let shards = encode_bytes(b"hello world", 3, 6).unwrap();
        let dup = vec![shards[0].clone(), shards[0].clone(), shards[0].clone()];
        assert!(matches!(
            decode_bytes(&dup, 3, 6),
            Err(CodeError::NotEnoughFragments { needed: 3, have: 1 })
        ));
    }

    #[test]
    fn bad_index_rejected() {
        let mut shards = encode_bytes(b"hi", 2, 4).unwrap();
        shards[0].index = 9;
        assert!(matches!(
            decode_bytes(&shards, 2, 4),
            Err(CodeError::BadFragmentIndex { index: 9 })
        ));
    }

    #[test]
    fn checked_decode_flags_corruption() {
        let data = b"integrity matters";
        let mut shards = encode_bytes(data, 2, 5).unwrap();
        shards[4].data[0] ^= 0xFF;
        // Unchecked decode from the 2 good shards works; checked decode over
        // a set containing the corrupted shard fails.
        assert_eq!(decode_bytes(&shards[..2], 2, 5).unwrap(), data);
        let err = decode_bytes_checked(&shards, 2, 5);
        assert!(err.is_err(), "corruption must be detected: {err:?}");
    }

    #[test]
    fn large_fragment_counts_beyond_gf256() {
        // m = 600 > 255: the reason we shard over F61.
        let data = b"weighted protocols need many tickets";
        let shards = encode_bytes(data, 150, 600).unwrap();
        let got = decode_bytes(&shards[450..600], 150, 600).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn gf256_round_trip_and_size() {
        let data = b"byte-field sharding has zero storage expansion";
        let shards = encode_bytes_gf256(data, 4, 12).unwrap();
        assert_eq!(shards.len(), 12);
        // Shard size = ceil((8 + len) / k) bytes, no 8/7 expansion.
        assert_eq!(shards[0].len(), (8 + data.len()).div_ceil(4));
        let got = decode_bytes_gf256(&shards[5..9], 4, 12).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn gf256_limits_and_errors() {
        assert!(encode_bytes_gf256(b"x", 3, 256).is_err());
        let shards = encode_bytes_gf256(b"hello", 3, 255).unwrap();
        assert_eq!(shards.len(), 255);
        assert!(matches!(
            decode_bytes_gf256(&shards[..2], 3, 255),
            Err(CodeError::NotEnoughFragments { needed: 3, have: 2 })
        ));
    }

    #[test]
    fn gf256_empty_blob() {
        let shards = encode_bytes_gf256(b"", 2, 4).unwrap();
        assert_eq!(decode_bytes_gf256(&shards[2..4], 2, 4).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn gf256_random_blobs_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..300),
            k in 1usize..6,
            extra in 0usize..6,
            seed in any::<u64>(),
        ) {
            let m = k + extra;
            let shards = encode_bytes_gf256(&data, k, m).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pick: Vec<Shard> = shards.clone();
            pick.shuffle(&mut rng);
            pick.truncate(k);
            prop_assert_eq!(decode_bytes_gf256(&pick, k, m).unwrap(), data);
        }

        #[test]
        fn random_blobs_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..500),
            k in 1usize..8,
            extra in 0usize..8,
            seed in any::<u64>(),
        ) {
            let m = k + extra;
            let shards = encode_bytes(&data, k, m).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pick: Vec<Shard> = shards.clone();
            pick.shuffle(&mut rng);
            pick.truncate(k);
            prop_assert_eq!(decode_bytes(&pick, k, m).unwrap(), data);
        }
    }
}
