//! Error types for the codec crate.

use std::error::Error;
use std::fmt;

/// Errors produced by encoding/decoding operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodeError {
    /// Invalid `(k, m)` parameters (`k == 0`, `k > m`, or `m` too large for
    /// the field).
    InvalidParameters {
        /// Human-readable description.
        what: String,
    },
    /// Not enough fragments available to reconstruct.
    NotEnoughFragments {
        /// Fragments required.
        needed: usize,
        /// Fragments available.
        have: usize,
    },
    /// Error decoding failed (more corruptions than the error budget, or an
    /// inconsistent fragment set).
    DecodingFailed,
    /// A fragment index is out of range or duplicated.
    BadFragmentIndex {
        /// The offending index.
        index: usize,
    },
    /// Byte payload does not match the expected shard layout.
    MalformedShard,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::InvalidParameters { what } => {
                write!(f, "invalid code parameters: {what}")
            }
            CodeError::NotEnoughFragments { needed, have } => {
                write!(f, "not enough fragments: need {needed}, have {have}")
            }
            CodeError::DecodingFailed => write!(f, "decoding failed"),
            CodeError::BadFragmentIndex { index } => write!(f, "bad fragment index {index}"),
            CodeError::MalformedShard => write!(f, "malformed shard payload"),
        }
    }
}

impl Error for CodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            CodeError::InvalidParameters { what: "k > m".into() },
            CodeError::NotEnoughFragments { needed: 3, have: 1 },
            CodeError::DecodingFailed,
            CodeError::BadFragmentIndex { index: 9 },
            CodeError::MalformedShard,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
