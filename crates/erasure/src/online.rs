//! Online error correction (paper Section 5.2; Das–Xiang–Ren, reference
//! \[27\]).
//!
//! A party reconstructing a disseminated blob holds a cryptographic hash of
//! the data and solicits fragments from everyone. Fragments from Byzantine
//! parties may be garbage, so the decoder repeatedly attempts
//! Welch–Berlekamp decoding with an increasing error budget `e` — attempting
//! whenever `k + 2e` fragments are available — and accepts the first
//! candidate passing the integrity check. With `k = t + 1`, `m = n = 3t+1`
//! in the nominal setting (or the WQ-derived `(ceil(beta_n T), T)` in the
//! weighted one), all honest fragments plus `e <= t` malicious ones always
//! suffice: `2t + 1 + e >= k + 2e`.

use swiper_field::Field;

use crate::error::CodeError;
use crate::rs::ReedSolomon;

/// Incremental decoder implementing online error correction.
///
/// # Examples
///
/// ```
/// use swiper_erasure::{OnlineDecoder, ReedSolomon};
/// use swiper_field::F61;
///
/// # fn main() -> Result<(), swiper_erasure::CodeError> {
/// let rs: ReedSolomon<F61> = ReedSolomon::new(2, 7)?;
/// let msg = vec![F61::new(5), F61::new(9)];
/// let frags = rs.encode(&msg)?;
/// let mut dec = OnlineDecoder::new(rs);
///
/// dec.add_fragment(0, F61::new(777))?;          // a Byzantine fragment
/// for i in 1..5 {
///     dec.add_fragment(i, frags[i])?;           // honest fragments
/// }
/// let got = dec.try_decode(|cand| cand == msg.as_slice()).expect("decodes");
/// assert_eq!(got, msg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct OnlineDecoder<F> {
    rs: ReedSolomon<F>,
    fragments: Vec<Option<F>>,
    received: usize,
    attempts: usize,
}

impl<F: Field> OnlineDecoder<F> {
    /// Wraps a codec.
    pub fn new(rs: ReedSolomon<F>) -> Self {
        let m = rs.m();
        OnlineDecoder { rs, fragments: vec![None; m], received: 0, attempts: 0 }
    }

    /// Records fragment `index`. The first write wins; replays are ignored
    /// (a Byzantine sender cannot overwrite an honest fragment).
    ///
    /// # Errors
    ///
    /// [`CodeError::BadFragmentIndex`] for an out-of-range index.
    pub fn add_fragment(&mut self, index: usize, value: F) -> Result<(), CodeError> {
        if index >= self.fragments.len() {
            return Err(CodeError::BadFragmentIndex { index });
        }
        if self.fragments[index].is_none() {
            self.fragments[index] = Some(value);
            self.received += 1;
        }
        Ok(())
    }

    /// Number of distinct fragments recorded so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Total decode attempts made (the paper's computation-overhead metric
    /// counts these).
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Attempts reconstruction with every feasible error budget
    /// `e = 0, 1, ...` (`k + 2e <= received`), returning the first candidate
    /// accepted by `check` (e.g. a hash comparison).
    ///
    /// Returns `None` when no feasible budget yields an accepted candidate —
    /// call again after more fragments arrive.
    pub fn try_decode<C>(&mut self, check: C) -> Option<Vec<F>>
    where
        C: Fn(&[F]) -> bool,
    {
        let k = self.rs.k();
        if self.received < k {
            return None;
        }
        let max_e = (self.received - k) / 2;
        for e in 0..=max_e {
            self.attempts += 1;
            if let Ok(out) = self.rs.decode_errors(&self.fragments, e) {
                if check(&out.message) {
                    return Some(out.message);
                }
            }
        }
        None
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use swiper_field::F61;

    fn setup(k: usize, m: usize, msg_vals: &[u64]) -> (ReedSolomon<F61>, Vec<F61>, Vec<F61>) {
        let rs: ReedSolomon<F61> = ReedSolomon::new(k, m).unwrap();
        let msg: Vec<F61> = msg_vals.iter().map(|&v| F61::new(v)).collect();
        let frags = rs.encode(&msg).unwrap();
        (rs, msg, frags)
    }

    #[test]
    fn decodes_without_errors_at_k_fragments() {
        let (rs, msg, frags) = setup(3, 10, &[1, 2, 3]);
        let mut dec = OnlineDecoder::new(rs);
        for i in 0..3 {
            dec.add_fragment(i, frags[i]).unwrap();
        }
        let got = dec.try_decode(|c| c == msg.as_slice()).unwrap();
        assert_eq!(got, msg);
        assert_eq!(dec.attempts(), 1);
    }

    #[test]
    fn rides_out_byzantine_fragments() {
        // n = 3t+1 = 10, t = 3, k = t+1 = 4: the [27] instantiation.
        let (rs, msg, frags) = setup(4, 10, &[7, 8, 9, 10]);
        let mut dec = OnlineDecoder::new(rs);
        // Adversary speaks first with 3 garbage fragments.
        for i in 0..3 {
            dec.add_fragment(i, F61::new(666 + i as u64)).unwrap();
        }
        // Honest fragments arrive one by one; decode as soon as possible.
        let mut decoded = None;
        for i in 3..10 {
            dec.add_fragment(i, frags[i]).unwrap();
            if let Some(got) = dec.try_decode(|c| c == msg.as_slice()) {
                decoded = Some((i, got));
                break;
            }
        }
        let (at, got) = decoded.expect("must decode after all honest fragments");
        assert_eq!(got, msg);
        // Needs k + 2e = 4 + 6 = 10 fragments when all 3 corruptions landed
        // among the first k + 2e; with 3 garbage + 7 honest = 10 total.
        assert_eq!(at, 9);
    }

    #[test]
    fn wrong_hash_rejects_candidates() {
        let (rs, _msg, frags) = setup(2, 6, &[4, 5]);
        let mut dec = OnlineDecoder::new(rs);
        for (i, &f) in frags.iter().enumerate() {
            dec.add_fragment(i, f).unwrap();
        }
        // A check that never accepts: decoder must return None, not panic.
        assert!(dec.try_decode(|_| false).is_none());
        assert!(dec.attempts() >= 1);
    }

    #[test]
    fn duplicate_and_bad_indices() {
        let (rs, _msg, frags) = setup(2, 4, &[1, 2]);
        let mut dec = OnlineDecoder::new(rs);
        dec.add_fragment(1, frags[1]).unwrap();
        dec.add_fragment(1, F61::new(999)).unwrap(); // ignored replay
        assert_eq!(dec.received(), 1);
        assert!(dec.add_fragment(4, frags[0]).is_err());
    }

    #[test]
    fn insufficient_fragments_return_none() {
        let (rs, msg, frags) = setup(3, 6, &[1, 2, 3]);
        let mut dec = OnlineDecoder::new(rs);
        dec.add_fragment(0, frags[0]).unwrap();
        assert!(dec.try_decode(|c| c == msg.as_slice()).is_none());
        assert_eq!(dec.attempts(), 0, "no attempt below k fragments");
    }
}
