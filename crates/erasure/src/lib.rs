//! # swiper-erasure — Reed–Solomon erasure and error-correcting codes
//!
//! Substrate for the weighted storage/broadcast protocols of the Swiper
//! paper (Sections 5.1–5.2):
//!
//! * [`ReedSolomon`] — a systematic `(k, m)` code over any
//!   [`swiper_field::Field`]: any `k` of the `m` fragments reconstruct the
//!   data (erasure decoding via Lagrange interpolation), and with
//!   `k + 2e` fragments up to `e` *corrupted* fragments can be corrected
//!   (error decoding via the Welch–Berlekamp rational-interpolation method).
//! * [`OnlineDecoder`] — the *online error correction* loop of
//!   Das–Xiang–Ren (reference \[27\] of the paper): repeatedly attempt
//!   decoding as fragments trickle in, raising the error budget `e` until a
//!   candidate passes an external integrity check (hash).
//! * [`shards`] — byte-oriented convenience layer: split a blob into `m`
//!   shards over `GF(2^8)` (up to 255 fragments) or `F_{2^61-1}` (billions
//!   of fragments — ticket counts exceed 255 routinely).
//!
//! The weighted protocols choose `(k, m) = (ceil(beta_n * T), T)` where `T`
//! is the ticket total produced by Weight Qualification — that choice is
//! exactly what Section 5 of the paper derives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod linalg;
mod online;
mod rs;
pub mod shards;

pub use error::CodeError;
pub use online::OnlineDecoder;
pub use rs::{DecodeOutcome, ReedSolomon};
