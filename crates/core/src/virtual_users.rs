//! Virtual-user mapping: running nominal protocols on tickets.
//!
//! Theorem 4.2 and the black-box transformation (Section 4.4) instantiate a
//! nominal protocol with `T` *virtual users* and let party `i` control `t_i`
//! of them. This module provides the deterministic bookkeeping: virtual ids
//! are assigned in party order, so every participant derives the identical
//! mapping from the (common-knowledge) ticket assignment.
//!
//! Epoch reconfiguration hands this module a [`TicketDelta`] — the compact
//! diff between two epochs' ticket assignments — and
//! [`VirtualUsers::apply_delta`] splices only the changed parties' virtual
//! ranges instead of rebuilding the whole mapping.

use serde::{Deserialize, Serialize};

use crate::assignment::{tickets_fingerprint, TicketAssignment};
use crate::error::CoreError;

/// A real party's index, as carried inside a [`StableId`]. Party sets are
/// fixed across epochs (a [`TicketDelta`] covers the same parties on both
/// sides), so a `PartyId` never renumbers.
pub type PartyId = u32;

/// The epoch-stable identity of a virtual user: the `offset`-th virtual
/// user controlled by `party`.
///
/// Dense virtual ids are a per-epoch artifact — any [`TicketDelta`] that
/// touches party `i` renumbers every virtual user after `i`'s range.
/// `(party, offset)` is the coordinate that survives: after
/// [`VirtualUsers::apply_delta`], the same `StableId` still names the same
/// logical sub-instance as long as `offset` is below the party's new
/// ticket count. Quorum trackers key votes on `StableId` and wire formats
/// carry `StableId`s, so one logical voter can never be double-counted
/// under its pre- and post-epoch dense ids.
///
/// The ordering is `(party, offset)` lexicographic — the same order dense
/// ids enumerate the users of one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StableId {
    /// The controlling party.
    pub party: PartyId,
    /// Position within the party's range (`0..tickets[party]`).
    pub offset: u32,
}

impl StableId {
    /// The identity at `(party, offset)`.
    ///
    /// # Panics
    ///
    /// Panics when either coordinate exceeds the `u32` wire envelope
    /// (party counts and per-party ticket counts far beyond any real
    /// deployment).
    pub fn new(party: usize, offset: u64) -> Self {
        StableId {
            party: PartyId::try_from(party).expect("party id fits the wire envelope"),
            offset: u32::try_from(offset).expect("offset fits the wire envelope"),
        }
    }

    /// The identity of a party acting in its own name (offset 0) — the
    /// form party-keyed weighted protocols use, where the party set is
    /// fixed and every party is its own stable identity.
    pub fn solo(party: usize) -> Self {
        StableId::new(party, 0)
    }

    /// The controlling party as an index.
    pub fn party_ix(&self) -> usize {
        self.party as usize
    }
}

impl std::fmt::Display for StableId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.party, self.offset)
    }
}

/// One party's ticket-count change between two epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketChange {
    /// The party whose count changed.
    pub party: usize,
    /// Tickets in the old epoch.
    pub old: u64,
    /// Tickets in the new epoch.
    pub new: u64,
}

/// The diff between two epochs' ticket assignments: which parties' ticket
/// counts changed, and by how much — the unit of work an epoch
/// reconfiguration hands to the protocols layer (virtual users joining and
/// leaving) without restarting in-flight instances.
///
/// # Examples
///
/// ```
/// use swiper_core::{TicketAssignment, TicketDelta, VirtualUsers};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let old = TicketAssignment::new(vec![2, 0, 1]);
/// let new = TicketAssignment::new(vec![1, 2, 1]);
/// let delta = TicketDelta::between(&old, &new)?;
/// assert_eq!(delta.changes().len(), 2);
/// assert_eq!(delta.joining(), 2);
/// assert_eq!(delta.leaving(), 1);
///
/// let mut mapping = VirtualUsers::from_assignment(&old)?;
/// mapping.apply_delta(&delta)?;
/// assert_eq!(mapping, VirtualUsers::from_assignment(&new)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketDelta {
    /// Changed parties in ascending party order.
    changes: Vec<TicketChange>,
    parties: usize,
    old_total: u128,
    new_total: u128,
    /// Fingerprint of the *entire* old assignment, so
    /// [`VirtualUsers::apply_delta`] can reject a base that matches the
    /// delta's changed parties but differs elsewhere.
    base_fingerprint: u128,
}

impl TicketDelta {
    /// Diffs two assignments over the same party set.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeltaMismatch`] when the assignments disagree on the
    /// number of parties.
    pub fn between(old: &TicketAssignment, new: &TicketAssignment) -> Result<Self, CoreError> {
        if old.len() != new.len() {
            return Err(CoreError::DeltaMismatch {
                what: "assignments cover different party counts",
            });
        }
        let changes = old
            .as_slice()
            .iter()
            .zip(new.as_slice())
            .enumerate()
            .filter(|(_, (o, n))| o != n)
            .map(|(party, (&old, &new))| TicketChange { party, old, new })
            .collect();
        Ok(TicketDelta {
            changes,
            parties: old.len(),
            old_total: old.total(),
            new_total: new.total(),
            base_fingerprint: tickets_fingerprint(old.as_slice()),
        })
    }

    /// The changed parties, ascending by party id.
    pub fn changes(&self) -> &[TicketChange] {
        &self.changes
    }

    /// Whether the two epochs have identical assignments.
    pub fn is_unchanged(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of parties both assignments cover.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Ticket total before the delta.
    pub fn old_total(&self) -> u128 {
        self.old_total
    }

    /// Ticket total after the delta.
    pub fn new_total(&self) -> u128 {
        self.new_total
    }

    /// Virtual users joining (sum of per-party ticket gains).
    pub fn joining(&self) -> u128 {
        self.changes.iter().map(|c| u128::from(c.new.saturating_sub(c.old))).sum()
    }

    /// Virtual users leaving (sum of per-party ticket losses).
    pub fn leaving(&self) -> u128 {
        self.changes.iter().map(|c| u128::from(c.old.saturating_sub(c.new))).sum()
    }

    /// Applies this delta to the assignment it was diffed against,
    /// producing the new epoch's assignment — the assignment-level twin of
    /// [`VirtualUsers::apply_delta`], for consumers that track tickets
    /// rather than mappings (e.g. re-dealing epoch-pinned keys).
    ///
    /// # Errors
    ///
    /// [`CoreError::DeltaMismatch`] when `old` is not the base this delta
    /// was diffed against, or the (possibly deserialized) changes list is
    /// malformed.
    pub fn apply_to(&self, old: &TicketAssignment) -> Result<TicketAssignment, CoreError> {
        self.validate_against(old.as_slice())?;
        let mut next = old.as_slice().to_vec();
        for change in &self.changes {
            next[change.party] = change.new;
        }
        Ok(TicketAssignment::new(next))
    }

    /// Validates this (possibly deserialized) delta against the base
    /// ticket vector it claims to extend — party count, full-base
    /// fingerprint, well-formed ascending changes that agree with the
    /// base, declared new total — and returns that total. The one shared
    /// rule for both the assignment-level ([`TicketDelta::apply_to`]) and
    /// mapping-level ([`VirtualUsers::apply_delta`]) splices, so the two
    /// can never drift apart.
    fn validate_against(&self, tickets: &[u64]) -> Result<u128, CoreError> {
        if self.parties != tickets.len() {
            return Err(CoreError::DeltaMismatch {
                what: "delta covers a different party count",
            });
        }
        // Fingerprint of the *whole* base: a delta diffed against an
        // assignment that differs anywhere — even at parties it does not
        // touch — must be rejected, or the splice would fabricate a
        // vector no epoch ever published.
        if self.base_fingerprint != tickets_fingerprint(tickets) {
            return Err(CoreError::DeltaMismatch {
                what: "delta base does not match the current tickets",
            });
        }
        let mut new_total: u128 = tickets.iter().map(|&t| u128::from(t)).sum();
        let mut prev_party: Option<usize> = None;
        for change in &self.changes {
            if change.party >= tickets.len() {
                return Err(CoreError::DeltaMismatch {
                    what: "change targets an unknown party",
                });
            }
            if prev_party.is_some_and(|p| p >= change.party) {
                return Err(CoreError::DeltaMismatch {
                    what: "changes are not in ascending party order",
                });
            }
            prev_party = Some(change.party);
            if tickets[change.party] != change.old {
                return Err(CoreError::DeltaMismatch {
                    what: "change disagrees with the current tickets",
                });
            }
            new_total = new_total - u128::from(change.old) + u128::from(change.new);
        }
        if new_total != self.new_total {
            return Err(CoreError::DeltaMismatch {
                what: "declared new total disagrees with the changes",
            });
        }
        Ok(new_total)
    }
}

/// A deterministic bijection between `T` virtual users and the real parties
/// controlling them.
///
/// # Examples
///
/// ```
/// use swiper_core::{TicketAssignment, VirtualUsers};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let tickets = TicketAssignment::new(vec![2, 0, 1]);
/// let vu = VirtualUsers::from_assignment(&tickets)?;
/// assert_eq!(vu.total(), 3);
/// assert_eq!(vu.owner_of(0), 0);
/// assert_eq!(vu.owner_of(1), 0);
/// assert_eq!(vu.owner_of(2), 2);
/// assert_eq!(vu.virtuals_of(0).collect::<Vec<_>>(), vec![0, 1]);
/// assert!(vu.virtuals_of(1).next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualUsers {
    /// `owner[v]` = real party controlling virtual user `v`.
    owner: Vec<usize>,
    /// `first[i]..first[i] + tickets[i]` = virtual ids of party `i`.
    first: Vec<u64>,
    tickets: Vec<u64>,
}

impl VirtualUsers {
    /// Builds the mapping from a ticket assignment.
    ///
    /// # Errors
    ///
    /// [`CoreError::ArithmeticOverflow`] when the total does not fit into
    /// addressable memory (`usize`).
    pub fn from_assignment(tickets: &TicketAssignment) -> Result<Self, CoreError> {
        let total =
            usize::try_from(tickets.total()).map_err(|_| CoreError::ArithmeticOverflow)?;
        let mut owner = Vec::with_capacity(total);
        let mut first = Vec::with_capacity(tickets.len());
        let mut next: u64 = 0;
        for (party, t) in tickets.iter() {
            first.push(next);
            for _ in 0..t {
                owner.push(party);
            }
            next += t;
        }
        Ok(VirtualUsers { owner, first, tickets: tickets.as_slice().to_vec() })
    }

    /// Number of virtual users `T`.
    pub fn total(&self) -> usize {
        self.owner.len()
    }

    /// Number of real parties `n`.
    pub fn parties(&self) -> usize {
        self.tickets.len()
    }

    /// The real party controlling virtual user `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.owner[v]
    }

    /// The virtual users controlled by party `i` (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn virtuals_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let start = self.first[i];
        let count = self.tickets[i];
        (start..start + count).map(|v| v as usize)
    }

    /// Tickets (= number of virtual users) of party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn tickets_of(&self, i: usize) -> u64 {
        self.tickets[i]
    }

    /// Locates virtual user `v` as `(owner, offset)` — the controlling
    /// party and `v`'s position within that party's range. The inverse of
    /// [`VirtualUsers::at`]. Offsets are the epoch-stable coordinate of a
    /// virtual user: after [`VirtualUsers::apply_delta`] renumbers the
    /// dense ids, `(owner, offset)` still names the same surviving
    /// sub-instance as long as `offset` is below the owner's new ticket
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()`.
    pub fn locate(&self, v: usize) -> (usize, u64) {
        let owner = self.owner[v];
        (owner, v as u64 - self.first[owner])
    }

    /// The virtual id at `(party, offset)`, or `None` when the offset is
    /// at or beyond the party's ticket count. The inverse of
    /// [`VirtualUsers::locate`].
    ///
    /// # Panics
    ///
    /// Panics if `party >= self.parties()`.
    pub fn at(&self, party: usize, offset: u64) -> Option<usize> {
        if offset < self.tickets[party] {
            usize::try_from(self.first[party] + offset).ok()
        } else {
            None
        }
    }

    /// The epoch-stable identity of virtual user `v` under this epoch's
    /// numbering — [`VirtualUsers::locate`] packaged as a [`StableId`].
    /// The inverse of [`VirtualUsers::dense_of`] over live ids.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()` or the coordinate exceeds the
    /// [`StableId`] wire envelope.
    pub fn stable_of(&self, v: usize) -> StableId {
        let (party, offset) = self.locate(v);
        StableId::new(party, offset)
    }

    /// The dense virtual id currently backing `id`, or `None` when the
    /// identity is retired (offset at or beyond the party's ticket count)
    /// or names an unknown party. The inverse of
    /// [`VirtualUsers::stable_of`]. Unlike [`VirtualUsers::at`] this never
    /// panics — `id` may come straight off the wire.
    pub fn dense_of(&self, id: StableId) -> Option<usize> {
        let party = id.party_ix();
        if party >= self.parties() {
            return None;
        }
        self.at(party, u64::from(id.offset))
    }

    /// Whether `id` names a live virtual user in this epoch.
    pub fn contains(&self, id: StableId) -> bool {
        self.dense_of(id).is_some()
    }

    /// Whether party `i` controls no virtual user — such parties must learn
    /// protocol outputs from ticket holders (Section 4.4's relay step).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn is_spectator(&self, i: usize) -> bool {
        self.tickets[i] == 0
    }

    /// Parties holding at least one virtual user.
    pub fn holders(&self) -> impl Iterator<Item = usize> + '_ {
        self.tickets.iter().enumerate().filter(|(_, &t)| t > 0).map(|(i, _)| i)
    }

    /// Applies an epoch's [`TicketDelta`] in place, splicing only the
    /// changed parties' virtual ranges. Equivalent to rebuilding via
    /// [`VirtualUsers::from_assignment`] on the new assignment, but the
    /// unchanged prefix of the owner table is never touched and unchanged
    /// parties keep their relative ranges.
    ///
    /// Virtual ids stay dense and party-ordered, so ids *after* the first
    /// changed party shift — callers translate in-flight per-virtual state
    /// through the returned mapping, exactly as they would after a rebuild.
    ///
    /// # Errors
    ///
    /// [`CoreError::DeltaMismatch`] when the delta was diffed against a
    /// different party count or a different base assignment than `self`
    /// (the mapping is left untouched in that case);
    /// [`CoreError::ArithmeticOverflow`] when the new total does not fit
    /// addressable memory.
    pub fn apply_delta(&mut self, delta: &TicketDelta) -> Result<(), CoreError> {
        // Deltas can arrive deserialized, so the shared validation treats
        // the changes list as untrusted (see
        // `TicketDelta::validate_against`); the new total is recomputed
        // rather than trusted for the addressability check.
        let new_total = delta.validate_against(&self.tickets)?;
        usize::try_from(new_total).map_err(|_| CoreError::ArithmeticOverflow)?;
        // Splice in descending party order so the untouched offsets in
        // `first` stay valid for every party still to be processed.
        for change in delta.changes().iter().rev() {
            let start = usize::try_from(self.first[change.party])
                .map_err(|_| CoreError::ArithmeticOverflow)?;
            let old = usize::try_from(change.old).map_err(|_| CoreError::ArithmeticOverflow)?;
            let new = usize::try_from(change.new).map_err(|_| CoreError::ArithmeticOverflow)?;
            self.owner.splice(start..start + old, std::iter::repeat_n(change.party, new));
            self.tickets[change.party] = change.new;
        }
        // One prefix-sum pass from the first changed party restores `first`.
        if let Some(first_changed) = delta.changes().first() {
            for i in first_changed.party..self.parties().saturating_sub(1) {
                self.first[i + 1] = self.first[i] + self.tickets[i];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_owner_and_virtuals() {
        let t = TicketAssignment::new(vec![3, 0, 2, 1]);
        let vu = VirtualUsers::from_assignment(&t).unwrap();
        assert_eq!(vu.total(), 6);
        assert_eq!(vu.parties(), 4);
        for party in 0..4 {
            for v in vu.virtuals_of(party) {
                assert_eq!(vu.owner_of(v), party);
            }
        }
        assert!(vu.is_spectator(1));
        assert!(!vu.is_spectator(0));
        assert_eq!(vu.holders().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn empty_tickets() {
        let t = TicketAssignment::new(vec![0, 0]);
        let vu = VirtualUsers::from_assignment(&t).unwrap();
        assert_eq!(vu.total(), 0);
        assert!(vu.holders().next().is_none());
    }

    #[test]
    fn delta_between_reports_changes_and_flows() {
        let old = TicketAssignment::new(vec![3, 0, 2, 1]);
        let new = TicketAssignment::new(vec![3, 2, 0, 1]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        assert_eq!(
            delta.changes(),
            &[
                TicketChange { party: 1, old: 0, new: 2 },
                TicketChange { party: 2, old: 2, new: 0 }
            ]
        );
        assert_eq!(delta.joining(), 2);
        assert_eq!(delta.leaving(), 2);
        assert_eq!((delta.old_total(), delta.new_total()), (6, 6));
        assert!(!delta.is_unchanged());
        assert!(TicketDelta::between(&old, &old).unwrap().is_unchanged());
        let short = TicketAssignment::new(vec![1, 1]);
        assert!(matches!(
            TicketDelta::between(&old, &short),
            Err(CoreError::DeltaMismatch { .. })
        ));
    }

    #[test]
    fn apply_delta_rejects_stale_bases() {
        let old = TicketAssignment::new(vec![2, 2, 1]);
        let new = TicketAssignment::new(vec![2, 3, 1]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        // Same party count, different base tickets at the changed party.
        let mut vu =
            VirtualUsers::from_assignment(&TicketAssignment::new(vec![2, 1, 1])).unwrap();
        assert!(matches!(vu.apply_delta(&delta), Err(CoreError::DeltaMismatch { .. })));
        // Same values at changed parties but different total elsewhere.
        let mut vu =
            VirtualUsers::from_assignment(&TicketAssignment::new(vec![9, 2, 1])).unwrap();
        assert!(matches!(vu.apply_delta(&delta), Err(CoreError::DeltaMismatch { .. })));
        // Same total AND matching values at the changed party, but the
        // unchanged parties differ ([1, 2, 2] vs the true base [2, 2, 1]) —
        // only the full-base fingerprint catches this one.
        let mut vu =
            VirtualUsers::from_assignment(&TicketAssignment::new(vec![1, 2, 2])).unwrap();
        assert!(matches!(vu.apply_delta(&delta), Err(CoreError::DeltaMismatch { .. })));
        // Wrong party count.
        let mut vu = VirtualUsers::from_assignment(&TicketAssignment::new(vec![2, 2])).unwrap();
        assert!(matches!(vu.apply_delta(&delta), Err(CoreError::DeltaMismatch { .. })));
    }

    #[test]
    fn apply_to_produces_the_new_assignment_and_rejects_stale_bases() {
        let old = TicketAssignment::new(vec![3, 0, 2, 1]);
        let new = TicketAssignment::new(vec![3, 2, 0, 1]);
        let delta = TicketDelta::between(&old, &new).unwrap();
        assert_eq!(delta.apply_to(&old).unwrap(), new);
        // A base the delta was not diffed against is rejected.
        let other = TicketAssignment::new(vec![3, 0, 2, 2]);
        assert!(matches!(delta.apply_to(&other), Err(CoreError::DeltaMismatch { .. })));
        let short = TicketAssignment::new(vec![3, 0]);
        assert!(matches!(delta.apply_to(&short), Err(CoreError::DeltaMismatch { .. })));
        // Tampered changes never corrupt the output.
        let mut forged = delta.clone();
        forged.changes = vec![TicketChange { party: 9, old: 0, new: 1 }];
        assert!(matches!(forged.apply_to(&old), Err(CoreError::DeltaMismatch { .. })));
    }

    #[test]
    fn apply_delta_rejects_malformed_changes() {
        // Deltas can arrive deserialized, so a well-fingerprinted delta
        // with a tampered changes list must still be rejected — never
        // panic or corrupt the mapping.
        let old = TicketAssignment::new(vec![2, 2, 1]);
        let new = TicketAssignment::new(vec![2, 3, 1]);
        let good = TicketDelta::between(&old, &new).unwrap();
        let fresh = || VirtualUsers::from_assignment(&old).unwrap();

        let mut forged = good.clone();
        forged.changes = vec![TicketChange { party: 9, old: 2, new: 3 }];
        assert!(matches!(fresh().apply_delta(&forged), Err(CoreError::DeltaMismatch { .. })));

        let mut forged = good.clone();
        forged.changes = vec![TicketChange { party: 0, old: 999, new: 0 }];
        assert!(matches!(fresh().apply_delta(&forged), Err(CoreError::DeltaMismatch { .. })));

        let mut forged = good.clone();
        forged.changes = vec![
            TicketChange { party: 1, old: 2, new: 3 },
            TicketChange { party: 1, old: 2, new: 3 },
        ];
        assert!(matches!(fresh().apply_delta(&forged), Err(CoreError::DeltaMismatch { .. })));

        let mut forged = good.clone();
        forged.new_total = 1;
        assert!(matches!(fresh().apply_delta(&forged), Err(CoreError::DeltaMismatch { .. })));

        // The untampered delta still applies.
        let mut vu = fresh();
        vu.apply_delta(&good).unwrap();
        assert_eq!(vu, VirtualUsers::from_assignment(&new).unwrap());
    }

    proptest! {
        #[test]
        fn apply_delta_matches_full_rebuild(
            old in proptest::collection::vec(0u64..9, 1..24),
            new in proptest::collection::vec(0u64..9, 1..24),
        ) {
            // Diff/apply over the common prefix length so the shapes match.
            let n = old.len().min(new.len());
            let old = TicketAssignment::new(old[..n].to_vec());
            let new = TicketAssignment::new(new[..n].to_vec());
            let delta = TicketDelta::between(&old, &new).unwrap();
            let mut incremental = VirtualUsers::from_assignment(&old).unwrap();
            incremental.apply_delta(&delta).unwrap();
            let rebuilt = VirtualUsers::from_assignment(&new).unwrap();
            prop_assert_eq!(incremental, rebuilt);
        }

        /// Epoch chains compose: applying k consecutive deltas one by one
        /// is the same mapping as a single rebuild from the final
        /// snapshot — the invariant live-instance reconfiguration leans on
        /// when it splices epoch after epoch into the same mapping.
        #[test]
        fn k_consecutive_deltas_compose_to_final_rebuild(
            base in proptest::collection::vec(0u64..9, 1..16),
            epochs in proptest::collection::vec(
                proptest::collection::vec(0u64..9, 16), 1..6),
        ) {
            let n = base.len();
            let mut current = TicketAssignment::new(base);
            let mut incremental = VirtualUsers::from_assignment(&current).unwrap();
            for epoch in &epochs {
                let next = TicketAssignment::new(epoch[..n].to_vec());
                let delta = TicketDelta::between(&current, &next).unwrap();
                incremental.apply_delta(&delta).unwrap();
                current = next;
            }
            let rebuilt = VirtualUsers::from_assignment(&current).unwrap();
            prop_assert_eq!(incremental, rebuilt);
        }

        /// Stable identities survive arbitrary delta chains: for every
        /// epoch along a random k-delta chain, `stable_of ∘ dense_of` is
        /// the identity on live ids, and an id that was live in the base
        /// epoch resolves after the whole chain **iff** its offset is
        /// still below its party's final ticket count — in which case it
        /// names the same `(party, offset)` coordinate it always did.
        /// This is the invariant that lets quorum trackers keyed on
        /// `StableId` carry votes across renumbering epochs.
        #[test]
        fn stable_ids_round_trip_across_delta_chains(
            base in proptest::collection::vec(0u64..9, 1..16),
            epochs in proptest::collection::vec(
                proptest::collection::vec(0u64..9, 16), 1..6),
        ) {
            let n = base.len();
            let mut current = TicketAssignment::new(base);
            let base_map = VirtualUsers::from_assignment(&current).unwrap();
            let base_ids: Vec<StableId> =
                (0..base_map.total()).map(|v| base_map.stable_of(v)).collect();
            let mut mapping = base_map.clone();
            for epoch in &epochs {
                let next = TicketAssignment::new(epoch[..n].to_vec());
                let delta = TicketDelta::between(&current, &next).unwrap();
                mapping.apply_delta(&delta).unwrap();
                current = next;
                // Per-epoch bijection between live dense ids and stable ids.
                for v in 0..mapping.total() {
                    let id = mapping.stable_of(v);
                    prop_assert_eq!(mapping.dense_of(id), Some(v));
                }
            }
            // Survivors of the whole chain keep their coordinate; retirees
            // resolve to nothing.
            for id in base_ids {
                let survives = u64::from(id.offset) < mapping.tickets_of(id.party_ix());
                prop_assert_eq!(mapping.contains(id), survives);
                if let Some(v) = mapping.dense_of(id) {
                    prop_assert_eq!(mapping.stable_of(v), id);
                }
            }
            // Unknown parties never resolve (wire inputs must not panic).
            prop_assert_eq!(mapping.dense_of(StableId::new(n, 0)), None);
        }

        /// `locate` and `at` are inverse bijections over live ids.
        #[test]
        fn locate_at_round_trip(ts in proptest::collection::vec(0u64..9, 1..16)) {
            let vu = VirtualUsers::from_assignment(&TicketAssignment::new(ts)).unwrap();
            for v in 0..vu.total() {
                let (owner, offset) = vu.locate(v);
                prop_assert_eq!(vu.at(owner, offset), Some(v));
            }
            for party in 0..vu.parties() {
                prop_assert_eq!(vu.at(party, vu.tickets_of(party)), None);
            }
        }

        #[test]
        fn mapping_is_a_partition(ts in proptest::collection::vec(0u64..20, 1..20)) {
            let t = TicketAssignment::new(ts);
            let vu = VirtualUsers::from_assignment(&t).unwrap();
            // Every virtual id appears in exactly one party's range.
            let mut seen = vec![0u32; vu.total()];
            for party in 0..vu.parties() {
                prop_assert_eq!(vu.virtuals_of(party).count() as u64, vu.tickets_of(party));
                for v in vu.virtuals_of(party) {
                    seen[v] += 1;
                    prop_assert_eq!(vu.owner_of(v), party);
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
