//! Virtual-user mapping: running nominal protocols on tickets.
//!
//! Theorem 4.2 and the black-box transformation (Section 4.4) instantiate a
//! nominal protocol with `T` *virtual users* and let party `i` control `t_i`
//! of them. This module provides the deterministic bookkeeping: virtual ids
//! are assigned in party order, so every participant derives the identical
//! mapping from the (common-knowledge) ticket assignment.

use serde::{Deserialize, Serialize};

use crate::assignment::TicketAssignment;
use crate::error::CoreError;

/// A deterministic bijection between `T` virtual users and the real parties
/// controlling them.
///
/// # Examples
///
/// ```
/// use swiper_core::{TicketAssignment, VirtualUsers};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let tickets = TicketAssignment::new(vec![2, 0, 1]);
/// let vu = VirtualUsers::from_assignment(&tickets)?;
/// assert_eq!(vu.total(), 3);
/// assert_eq!(vu.owner_of(0), 0);
/// assert_eq!(vu.owner_of(1), 0);
/// assert_eq!(vu.owner_of(2), 2);
/// assert_eq!(vu.virtuals_of(0).collect::<Vec<_>>(), vec![0, 1]);
/// assert!(vu.virtuals_of(1).next().is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualUsers {
    /// `owner[v]` = real party controlling virtual user `v`.
    owner: Vec<usize>,
    /// `first[i]..first[i] + tickets[i]` = virtual ids of party `i`.
    first: Vec<u64>,
    tickets: Vec<u64>,
}

impl VirtualUsers {
    /// Builds the mapping from a ticket assignment.
    ///
    /// # Errors
    ///
    /// [`CoreError::ArithmeticOverflow`] when the total does not fit into
    /// addressable memory (`usize`).
    pub fn from_assignment(tickets: &TicketAssignment) -> Result<Self, CoreError> {
        let total =
            usize::try_from(tickets.total()).map_err(|_| CoreError::ArithmeticOverflow)?;
        let mut owner = Vec::with_capacity(total);
        let mut first = Vec::with_capacity(tickets.len());
        let mut next: u64 = 0;
        for (party, t) in tickets.iter() {
            first.push(next);
            for _ in 0..t {
                owner.push(party);
            }
            next += t;
        }
        Ok(VirtualUsers { owner, first, tickets: tickets.as_slice().to_vec() })
    }

    /// Number of virtual users `T`.
    pub fn total(&self) -> usize {
        self.owner.len()
    }

    /// Number of real parties `n`.
    pub fn parties(&self) -> usize {
        self.tickets.len()
    }

    /// The real party controlling virtual user `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.total()`.
    pub fn owner_of(&self, v: usize) -> usize {
        self.owner[v]
    }

    /// The virtual users controlled by party `i` (possibly empty).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn virtuals_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let start = self.first[i];
        let count = self.tickets[i];
        (start..start + count).map(|v| v as usize)
    }

    /// Tickets (= number of virtual users) of party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn tickets_of(&self, i: usize) -> u64 {
        self.tickets[i]
    }

    /// Whether party `i` controls no virtual user — such parties must learn
    /// protocol outputs from ticket holders (Section 4.4's relay step).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.parties()`.
    pub fn is_spectator(&self, i: usize) -> bool {
        self.tickets[i] == 0
    }

    /// Parties holding at least one virtual user.
    pub fn holders(&self) -> impl Iterator<Item = usize> + '_ {
        self.tickets.iter().enumerate().filter(|(_, &t)| t > 0).map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_owner_and_virtuals() {
        let t = TicketAssignment::new(vec![3, 0, 2, 1]);
        let vu = VirtualUsers::from_assignment(&t).unwrap();
        assert_eq!(vu.total(), 6);
        assert_eq!(vu.parties(), 4);
        for party in 0..4 {
            for v in vu.virtuals_of(party) {
                assert_eq!(vu.owner_of(v), party);
            }
        }
        assert!(vu.is_spectator(1));
        assert!(!vu.is_spectator(0));
        assert_eq!(vu.holders().collect::<Vec<_>>(), vec![0, 2, 3]);
    }

    #[test]
    fn empty_tickets() {
        let t = TicketAssignment::new(vec![0, 0]);
        let vu = VirtualUsers::from_assignment(&t).unwrap();
        assert_eq!(vu.total(), 0);
        assert!(vu.holders().next().is_none());
    }

    proptest! {
        #[test]
        fn mapping_is_a_partition(ts in proptest::collection::vec(0u64..20, 1..20)) {
            let t = TicketAssignment::new(ts);
            let vu = VirtualUsers::from_assignment(&t).unwrap();
            // Every virtual id appears in exactly one party's range.
            let mut seen = vec![0u32; vu.total()];
            for party in 0..vu.parties() {
                prop_assert_eq!(vu.virtuals_of(party).count() as u64, vu.tickets_of(party));
                for v in vu.virtuals_of(party) {
                    seen[v] += 1;
                    prop_assert_eq!(vu.owner_of(v), party);
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
