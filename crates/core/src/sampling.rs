//! Weighted sampling and the sampling-guided bracket estimate.
//!
//! Three pieces live here, all in service of weight-driven resource
//! allocation — the million-party solver and stake-weighted peer sampling
//! for gossip fanout:
//!
//! * [`AliasTable`] — Walker/Vose alias method over a [`Weights`] vector,
//!   built with **exact integer arithmetic** so every replica constructs
//!   the identical table: party `i` is drawn with probability exactly
//!   `w_i / W` in O(1) per draw after an O(n) build. This is the classic
//!   structure behind the parallel weighted-sampling line (Hübschle-Schneider
//!   & Sanders) referenced by the roadmap.
//! * [`WeightedReservoir`] — a streaming weighted reservoir sampler
//!   (Chao's probability-proportional-to-size scheme, the reservoir
//!   counterpart of the distributed weighted-sampling line of Jayaram et
//!   al.): offer `(item, weight)` pairs one by one, keep `k` of them with
//!   inclusion probability proportional to weight, O(1) state per slot,
//!   exact integer arithmetic over the same [`SplitMix64`] stream. The
//!   gossip overlay draws its active-view and fanout peers from this
//!   sampler and re-seeds it at `EpochEvent` boundaries, so heavy parties
//!   sit in proportionally many views.
//! * [`estimate_boundary_total`](crate::sampling) *(crate-internal)* — a
//!   statistical estimate of the ticket total at the solver's validity
//!   boundary, computed from a few thousand weight-proportional draws. The
//!   solver uses it only to place a *trust window* over its bisection —
//!   midpoints far outside the window get assumed verdicts, midpoints
//!   inside are probed exactly, and the assumed endpoints are re-verified
//!   before the answer is accepted (falling back to the full bisection on
//!   any contradiction) — so the estimate can be arbitrarily wrong without
//!   affecting correctness; a bad estimate only costs extra probes.
//!
//! The estimate simulates the solver's own quick test on the sample. A
//! weight-proportional draw carries weight-mass `W/m`, so the `m` draws
//! form an empirical weighted distribution of the population (the
//! streaming weighted-sampling idea of Jayaram et al.). At a candidate
//! scale `s` the family's tickets are `t(w) = floor(s·w + c)` — evaluated
//! *exactly* per draw, so the regime where most parties round to zero
//! tickets (every million-party solve: `T ≪ n`) is represented correctly —
//! giving two importance estimates: the family total
//! `T(s) ≈ (W/m)·Σ t(w_j)/w_j`, and the fractional adversary's take,
//! obtained by sorting draws by ticket density `t(w)/w` and letting each
//! capacity consume the densest mass first. Bisecting `s` on the predicate
//! "take < q·T(s)" lands within sampling error (a few percent at
//! [`ESTIMATE_DRAWS`]) of the true validity boundary.

use crate::weights::Weights;

/// Deterministic SplitMix64 — the sampler's only randomness source. Seeded
/// with a fixed constant by the solver so all replicas derive identical
/// estimates (and therefore identical probe sequences).
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value uniform in `[0, m)`. The modulo bias is at most `2^-64` for
    /// any `m` the sampler uses — irrelevant for an estimator; determinism
    /// is the property that matters.
    fn below(&mut self, m: u128) -> u128 {
        debug_assert!(m > 0);
        let x = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        x % m
    }
}

/// Streaming weighted reservoir sampler: keeps `k` of the offered items
/// with inclusion probability proportional to their weight (Chao's
/// probability-proportional-to-size reservoir). Determinism contract
/// matches [`AliasTable`]: all randomness comes from the caller's
/// [`SplitMix64`], and the per-slot probability bookkeeping uses only
/// IEEE-exact `f64` operations (`+ - * /`, `min`, total-order sort — no
/// transcendentals), so every replica offering the same stream with the
/// same seed keeps the identical reservoir.
///
/// Zero-weight items are skipped without consuming randomness — they can
/// never be included (callers that must reach zero-stake parties floor
/// their sampling weights at 1 before offering). Items whose weight
/// exceeds `total/k` are *overweight*: their inclusion probability clips
/// at 1, exactly as in the original scheme.
///
/// # Examples
///
/// ```
/// use swiper_core::sampling::{SplitMix64, WeightedReservoir};
///
/// let mut rng = SplitMix64::new(7);
/// let mut res = WeightedReservoir::new(2);
/// for (item, weight) in [(0, 90u64), (1, 5), (2, 5), (3, 900)] {
///     res.offer(item, weight, &mut rng);
/// }
/// let picked = res.items();
/// assert_eq!(picked.len(), 2);
/// assert!(picked.contains(&3), "the 90% whale is (almost) always kept");
/// ```
pub struct WeightedReservoir {
    k: usize,
    total: u128,
    /// `(item, weight, pi)` — `pi` is the item's current unconditional
    /// inclusion probability, maintained exactly by Chao's recursion.
    slots: Vec<(usize, u64, f64)>,
}

impl WeightedReservoir {
    /// An empty reservoir holding at most `k` items.
    #[must_use]
    pub fn new(k: usize) -> Self {
        WeightedReservoir { k, total: 0, slots: Vec::with_capacity(k) }
    }

    /// Offers one `(item, weight)` pair. Implements Chao's full update:
    /// each arrival re-solves the population fixpoint `Σ min(cap_i, λ·wᵢ)
    /// = k` (members capped at their stored probability, the new item at
    /// 1, the already-rejected mass entering linearly), accepts the new
    /// item with its fixpoint probability, and evicts a member chosen
    /// proportionally to its required probability *reduction* — not
    /// uniformly. The non-uniform eviction is what keeps inclusion exactly
    /// `k·w/W` through clip transitions: a naive `min(1, k·w/W)`-insert
    /// with uniform eviction drifts toward uniform sampling, because early
    /// prefixes clip almost everything and the error persists as a ratio.
    /// Zero-weight and zero-capacity offers are ignored and consume no
    /// randomness.
    pub fn offer(&mut self, item: usize, weight: u64, rng: &mut SplitMix64) {
        if weight == 0 || self.k == 0 {
            return;
        }
        self.total += u128::from(weight);
        if self.slots.len() < self.k {
            // While filling, everything seen is held with certainty.
            self.slots.push((item, weight, 1.0));
            return;
        }
        // New targets: λ solves Σ min(cap, λ·w) = k over the population —
        // the k members (cap = stored π), the new item (cap = 1), and the
        // absent mass (total weight seen minus what the candidates carry,
        // contributing λ·W_absent uncapped).
        let mut cands: Vec<(f64, f64)> =
            self.slots.iter().map(|&(_, w, pi)| (w as f64, pi)).collect();
        cands.push((weight as f64, 1.0));
        let carried: u128 = cands.iter().map(|&(w, _)| w as u128).sum();
        let absent = self.total.saturating_sub(carried) as f64;
        let lambda = waterfill(&cands, absent, self.k as f64);
        let targets: Vec<f64> = cands.iter().map(|&(w, cap)| (lambda * w).min(cap)).collect();
        // Accept the new item with its target probability. One rng draw
        // regardless of outcome; a second only on accept.
        let pi_new = targets[self.slots.len()];
        let accept = unit_f64(rng) < pi_new;
        // Each member keeps its reduced target; on accept the victim is
        // drawn with probability proportional to (π − π′)/π — the exact
        // reduction its marginal requires, conditioned on being present.
        if accept {
            let mass: Vec<f64> = self
                .slots
                .iter()
                .zip(&targets)
                .map(|(&(_, _, pi), &t)| if pi > t { (pi - t) / pi } else { 0.0 })
                .collect();
            let sum: f64 = mass.iter().sum();
            let evict = if sum > 0.0 {
                let mut x = unit_f64(rng) * sum;
                let mut pick = self.slots.len() - 1;
                for (ix, &m) in mass.iter().enumerate() {
                    if x < m {
                        pick = ix;
                        break;
                    }
                    x -= m;
                }
                pick
            } else {
                // Degenerate realization with no reducible member: fall
                // back to an arbitrary non-certain slot (one exists, else
                // Σπ would exceed k).
                self.slots.iter().position(|&(_, _, pi)| pi < 1.0).unwrap_or(0)
            };
            for (slot, &t) in self.slots.iter_mut().zip(&targets) {
                slot.2 = t;
            }
            self.slots[evict] = (item, weight, pi_new);
        } else {
            for (slot, &t) in self.slots.iter_mut().zip(&targets) {
                slot.2 = t;
            }
        }
    }

    /// The sampled items, ascending (sorted so consumers iterate in a
    /// replica-independent order).
    #[must_use]
    pub fn items(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.slots.iter().map(|&(item, _, _)| item).collect();
        out.sort_unstable();
        out
    }

    /// Items currently held (≤ `k`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the reservoir holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// One-shot convenience: a stake-weighted sample of up to `k`
    /// distinct indices drawn from `weights`, skipping every index for
    /// which `skip` returns true. Indices are offered in ascending order
    /// (the determinism contract: same weights, same skips, same rng
    /// state — same sample) and returned ascending.
    #[must_use]
    pub fn sample_indices(
        weights: &[u64],
        k: usize,
        rng: &mut SplitMix64,
        mut skip: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        let mut res = WeightedReservoir::new(k);
        for (i, &w) in weights.iter().enumerate() {
            if !skip(i) {
                res.offer(i, w, rng);
            }
        }
        res.items()
    }
}

/// A uniform draw in `[0, 1)` with 53 bits of precision — the standard
/// shift-and-scale construction, bit-deterministic everywhere.
fn unit_f64(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Solves `Σᵢ min(capᵢ, λ·wᵢ) + λ·absent = k` for λ ≥ 0. `f(λ)` is
/// piecewise-linear and increasing, so the walk over saturation
/// thresholds (sorted by `cap/w`) finds the segment containing `k`; when
/// even every cap together cannot reach `k`, λ is `+∞` and every
/// candidate sits at its cap.
fn waterfill(cands: &[(f64, f64)], absent: f64, k: f64) -> f64 {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let ta = cands[a].1 / cands[a].0;
        let tb = cands[b].1 / cands[b].0;
        ta.total_cmp(&tb).then(a.cmp(&b))
    });
    // `active` = weight still below its cap; `saturated` = cap mass already
    // pinned at its ceiling.
    let mut active: f64 = absent + cands.iter().map(|&(w, _)| w).sum::<f64>();
    let mut saturated = 0.0;
    for &ix in &order {
        let (w, cap) = cands[ix];
        if active > 0.0 {
            let lambda = (k - saturated) / active;
            if lambda <= cap / w {
                return lambda.max(0.0);
            }
        }
        saturated += cap;
        active -= w;
    }
    if active > 0.0 && k > saturated {
        return (k - saturated) / active;
    }
    f64::INFINITY
}

/// One alias slot: `keep` of the slot's mass stays with the owning party,
/// the remainder belongs to `alias`.
struct Slot {
    keep: u128,
    alias: u32,
}

/// Walker/Vose alias table over a weight vector: O(n) build, O(1)
/// weight-proportional draws, exact integer probabilities.
///
/// # Examples
///
/// ```
/// use swiper_core::sampling::{AliasTable, SplitMix64};
/// use swiper_core::Weights;
///
/// let weights = Weights::new(vec![90, 5, 5]).unwrap();
/// let table = AliasTable::new(&weights).unwrap();
/// let mut rng = SplitMix64::new(7);
/// let heavy = (0..1000).filter(|_| table.sample(&mut rng) == 0).count();
/// assert!(heavy > 800, "party 0 holds 90% of the weight: {heavy}");
/// ```
pub struct AliasTable {
    slots: Vec<Slot>,
    /// Mass held by each slot (= the total weight `W`).
    slot_mass: u128,
}

impl AliasTable {
    /// Builds the table; `None` when the vector is empty or all-zero
    /// (there is no distribution to sample).
    pub fn new(weights: &Weights) -> Option<Self> {
        let n = weights.len();
        let total = weights.total();
        if n == 0 || total == 0 {
            return None;
        }
        let n128 = n as u128;
        // Scaled mass per party; each of the n slots holds exactly W.
        let mut rem: Vec<u128> =
            weights.as_slice().iter().map(|&w| u128::from(w) * n128).collect();
        let mut slots: Vec<Slot> =
            (0..n).map(|i| Slot { keep: total, alias: i as u32 }).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &r) in rem.iter().enumerate() {
            if r < total {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(&l)) = (small.pop(), large.last()) {
            slots[s] = Slot { keep: rem[s], alias: l as u32 };
            rem[l] -= total - rem[s];
            if rem[l] < total {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (rounding residue) keep their full slot.
        Some(AliasTable { slots, slot_mass: total })
    }

    /// Draws one party index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let x = rng.below(self.slot_mass * self.slots.len() as u128);
        let k = (x / self.slot_mass) as usize;
        let r = x % self.slot_mass;
        let slot = &self.slots[k];
        if r < slot.keep {
            k
        } else {
            slot.alias as usize
        }
    }
}

/// Draws the sampler makes per estimate: enough to place the boundary
/// within a few percent on real stake distributions (whale-mix at n = 10⁶
/// lands within ~6% across seeds; the adversary-side noise is amplified
/// ~`qW/(qW - cap_sum)`-fold into the boundary, which is what the draw
/// count has to beat), cheap enough to be noise next to one exact probe.
pub(crate) const ESTIMATE_DRAWS: usize = 8192;

/// Fixed seed for the solver's estimates — every replica must derive the
/// same probe sequence from the same weight vector.
pub(crate) const ESTIMATE_SEED: u64 = 0x5317_9E57_1A7E_0001;

/// Statistical estimate of the total `T` at which the family flips valid,
/// for a check with fractional targets `q·T` against adversary capacities
/// `caps` and family constant `c` (see the module docs for the method).
/// `None` when no sensible estimate exists (degenerate weights or
/// parameters); the caller falls back to the cold bracket.
#[allow(clippy::too_many_arguments)] // crate-internal; mirrors the check-parameter tuple.
pub(crate) fn estimate_boundary_total(
    weights: &Weights,
    caps: &[u128],
    q_num: u128,
    q_den: u128,
    c_num: u128,
    c_den: u128,
    draws: usize,
    seed: u64,
) -> Option<u64> {
    let table = AliasTable::new(weights)?;
    if q_den == 0 || c_den == 0 {
        return None;
    }
    let wt = weights.total() as f64;
    let q = q_num as f64 / q_den as f64;
    let c = c_num as f64 / c_den as f64;
    let cap_sum: f64 = caps.iter().map(|&cap| cap as f64).sum();
    if q * wt <= cap_sum {
        return None; // capacity at/above the target slope: no finite boundary.
    }
    let mut rng = SplitMix64::new(seed);
    let m = draws.max(16);
    let drawn: Vec<u64> = (0..m).map(|_| weights.get(table.sample(&mut rng))).collect();
    // Each weight-proportional draw stands for weight-mass W/m of the
    // population: the count of parties it represents is (W/m)/w_j, so any
    // per-party statistic g(w) has the importance estimate (W/m)·Σ g(w_j)/w_j.
    let mass = wt / m as f64;

    // Simulate the quick test at scale `s` on the empirical distribution.
    // Returns (estimated family total, fractional adversary take summed
    // over all capacities).
    let mut dens: Vec<f64> = Vec::with_capacity(m);
    let eval = |s: f64, dens: &mut Vec<f64>| -> (f64, f64) {
        dens.clear();
        let mut t_hat = 0.0f64;
        for &w in &drawn {
            let wf = w as f64;
            // The family's exact per-party ticket rule — floors included,
            // so the `T ≪ n` regime (most parties at zero tickets) is
            // represented instead of averaged away.
            let t = (s * wf + c).floor();
            t_hat += (t / wf) * mass;
            dens.push(t / wf);
        }
        // Fractional adversary: each capacity independently consumes the
        // densest weight-mass first (draws all carry equal mass W/m).
        dens.sort_unstable_by(|a, b| b.total_cmp(a));
        let mut take = 0.0f64;
        for &cap in caps {
            let mut left = cap as f64;
            for &d in dens.iter() {
                if left <= 0.0 || d <= 0.0 {
                    break;
                }
                let grab = mass.min(left);
                take += d * grab;
                left -= grab;
            }
        }
        (t_hat, take)
    };
    let valid = |t_hat: f64, take: f64| take < q * t_hat;

    // Bracket the flip in `s`: valid(s) is (up to floor wiggle) monotone
    // because q·W > cap_sum makes the target outgrow the take.
    let (t0, a0) = eval(0.0, &mut dens);
    let finish = |t_hat: f64| -> Option<u64> {
        if !t_hat.is_finite() {
            return None;
        }
        if t_hat < 1.0 {
            return Some(1);
        }
        if t_hat >= u64::MAX as f64 {
            return None;
        }
        Some(t_hat as u64)
    };
    if valid(t0, a0) {
        return finish(t0);
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0 / wt.max(1.0);
    let mut hi_total = f64::NAN;
    let mut bracketed = false;
    for _ in 0..200 {
        let (t, a) = eval(hi, &mut dens);
        if valid(t, a) {
            hi_total = t;
            bracketed = true;
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    if !bracketed {
        return None;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let (t, a) = eval(mid, &mut dens);
        if valid(t, a) {
            hi = mid;
            hi_total = t;
        } else {
            lo = mid;
        }
    }
    finish(hi_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_vectors_cannot_reach_the_table() {
        // All-zero vectors are rejected upstream by `Weights::new`; the
        // table's own `None` guard is defense in depth.
        assert!(Weights::new(vec![0, 0, 0]).is_err());
    }

    #[test]
    fn alias_table_is_deterministic_per_seed() {
        let w = Weights::new(vec![5, 1, 100, 17, 0, 9]).unwrap();
        let table = AliasTable::new(&w).unwrap();
        let draw = |seed| {
            let mut rng = SplitMix64::new(seed);
            (0..64).map(|_| table.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
    }

    #[test]
    fn alias_table_matches_weights_in_frequency() {
        // Exact-probability check via full enumeration of slot masses:
        // summed keep/alias mass per party must equal w_i * n.
        let ws = vec![3u64, 0, 7, 90, 10, 10];
        let w = Weights::new(ws.clone()).unwrap();
        let table = AliasTable::new(&w).unwrap();
        let mut mass = vec![0u128; ws.len()];
        for (k, slot) in table.slots.iter().enumerate() {
            mass[k] += slot.keep;
            mass[slot.alias as usize] += table.slot_mass - slot.keep;
        }
        let n = ws.len() as u128;
        for (i, &wi) in ws.iter().enumerate() {
            assert_eq!(mass[i], u128::from(wi) * n, "party {i}");
        }
    }

    #[test]
    fn zero_weight_parties_are_never_drawn() {
        let w = Weights::new(vec![0, 50, 0, 50]).unwrap();
        let table = AliasTable::new(&w).unwrap();
        let mut rng = SplitMix64::new(1);
        for _ in 0..500 {
            let i = table.sample(&mut rng);
            assert!(i == 1 || i == 3, "drew zero-weight party {i}");
        }
    }

    #[test]
    fn reservoir_is_deterministic_per_seed_and_returns_sorted_distinct() {
        let ws = vec![5u64, 1, 100, 17, 3, 9, 40, 2];
        let draw = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            WeightedReservoir::sample_indices(&ws, 3, &mut rng, |i| i == 2)
        };
        let a = draw(42);
        assert_eq!(a, draw(42), "same seed, same sample");
        assert!((0..32).any(|s| draw(s) != a), "some seed out of 32 must diverge");
        assert_eq!(a.len(), 3);
        assert!(a.windows(2).all(|p| p[0] < p[1]), "sorted, distinct: {a:?}");
        assert!(!a.contains(&2), "skipped index must not be sampled");
    }

    #[test]
    fn reservoir_skips_zero_weight_items_and_caps_at_population() {
        let ws = vec![0u64, 50, 0, 50];
        let mut rng = SplitMix64::new(1);
        for _ in 0..200 {
            let picked = WeightedReservoir::sample_indices(&ws, 3, &mut rng, |_| false);
            assert_eq!(picked, vec![1, 3], "only the weighted parties are sampleable");
        }
        let mut res = WeightedReservoir::new(5);
        res.offer(7, 3, &mut rng);
        assert_eq!(res.len(), 1);
        assert!(!res.is_empty());
        assert_eq!(res.items(), vec![7]);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The satellite property: over many seeded draws, each party's
        /// inclusion frequency is proportional to its weight. A
        /// chi-square-style tolerance — every per-party relative
        /// deviation from the expected count must stay small — over
        /// random weight vectors and seeds.
        #[test]
        fn reservoir_inclusion_probability_tracks_weight(
                ws in proptest::collection::vec(1u64..64, 8..16),
                seed in any::<u64>(),
            ) {
                let n = ws.len();
                let k = 3usize;
                // Chao clipping makes heavily overweight parties (w >
                // W/k) sit at probability 1 instead of k·w/W; keep the
                // vector in the unclipped regime so the proportionality
                // claim is exact.
                let total: u128 = ws.iter().map(|&w| u128::from(w)).sum();
                prop_assume!(ws.iter().all(|&w| u128::from(w) * k as u128 * 10 < total * 9));
                let draws = 6000u64;
                let mut hits = vec![0u64; n];
                let mut rng = SplitMix64::new(seed);
                for _ in 0..draws {
                    for i in WeightedReservoir::sample_indices(&ws, k, &mut rng, |_| false) {
                        hits[i] += 1;
                    }
                }
                // E[hits_i] = draws · k · w_i / W; demand every party
                // within 25% relative + a small absolute slack (the
                // chi-square-style bound at this sample size).
                for (i, &w) in ws.iter().enumerate() {
                    let expect = draws as f64 * k as f64 * w as f64 / total as f64;
                    let got = hits[i] as f64;
                    let dev = (got - expect).abs();
                    prop_assert!(
                        dev <= expect * 0.25 + 12.0,
                        "party {i} (w={w}): {got} hits vs {expect:.1} expected"
                    );
                }
            }
    }

    /// Reweigh-at-boundary: re-running the sampler against a refreshed
    /// weight vector (the overlay's `EpochEvent` path) must follow the
    /// new stake — a party whose weight collapsed stops dominating views
    /// and the newly heavy party takes its place.
    #[test]
    fn reservoir_reweigh_follows_the_new_stake() {
        let before = vec![1000u64, 1, 1, 1, 1, 1, 1, 1];
        let after = vec![1u64, 1, 1, 1, 1, 1, 1, 1000];
        let count_in_views = |ws: &[u64], party: usize| -> usize {
            let mut rng = SplitMix64::new(99);
            (0..200)
                .filter(|_| {
                    WeightedReservoir::sample_indices(ws, 2, &mut rng, |_| false)
                        .contains(&party)
                })
                .count()
        };
        assert!(count_in_views(&before, 0) > 180, "whale dominates pre-boundary views");
        assert!(count_in_views(&after, 0) < 120, "collapsed whale loses its seats");
        assert!(count_in_views(&after, 7) > 180, "the new whale inherits them");
    }

    #[test]
    fn estimate_lands_near_the_true_boundary_on_skewed_weights() {
        use crate::problems::WeightRestriction;
        use crate::ratio::Ratio;
        use crate::solver::Swiper;

        // A lognormal-ish skewed vector, large enough for the estimator's
        // statistics to bite but cheap to solve exactly.
        let mut state = SplitMix64::new(9);
        let ws: Vec<u64> = (0..4000)
            .map(|_| 1 + (state.next_u64() % 1000) * (state.next_u64() % 97))
            .collect();
        let w = Weights::new(ws).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let exact = Swiper::new().solve_restriction(&w, &p).unwrap();
        let truth = exact.total_tickets() as f64;

        let caps = [crate::verify::strict_capacity(p.alpha_w(), w.total()).unwrap()];
        let an = p.alpha_n();
        let c = p.family_constant();
        let est = estimate_boundary_total(
            &w,
            &caps,
            an.num(),
            an.den(),
            c.num(),
            c.den(),
            ESTIMATE_DRAWS,
            ESTIMATE_SEED,
        )
        .unwrap() as f64;
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.25, "estimate {est} vs truth {truth} (rel err {rel:.3})");
    }
}
