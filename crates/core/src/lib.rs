//! # swiper-core — weight reduction for weighted distributed protocols
//!
//! A from-scratch implementation of the *weight reduction problems* and the
//! **Swiper** approximate solver from:
//!
//! > Andrei Tonkikh and Luciano Freitas. *Swiper: a new paradigm for
//! > efficient weighted distributed protocols.* PODC 2024
//! > (arXiv:2307.15561).
//!
//! Weight reduction maps large real weights `w_1..w_n` (stake, estimated
//! failure probabilities, ...) to small integer weights — *tickets* —
//! `t_1..t_n`, preserving the structural property a distributed protocol
//! needs. Three problems are defined (Section 2 of the paper):
//!
//! * **Weight Restriction** ([`WeightRestriction`]): every subset with less
//!   than an `alpha_w` fraction of the weight gets less than an `alpha_n`
//!   fraction of the tickets. Powers weighted threshold cryptography,
//!   random beacons and the black-box protocol transformation.
//! * **Weight Qualification** ([`WeightQualification`]): every subset with
//!   more than a `beta_w` fraction of the weight gets more than a `beta_n`
//!   fraction of the tickets. Powers erasure- and error-coded storage and
//!   broadcast.
//! * **Weight Separation** ([`WeightSeparation`]): any subset heavier than
//!   `beta * W` out-tickets any subset lighter than `alpha * W`.
//!
//! The [`Swiper`] solver is deterministic (all parties derive the same
//! tickets locally), respects the paper's upper bounds — at most
//! `ceil(aw(1-aw)/(an-aw) * n)` tickets for WR (Theorem 2.1) — and performs
//! far better than the bound on the skewed weight distributions found in
//! practice (Section 7).
//!
//! ## Quick start
//!
//! ```
//! use swiper_core::{Ratio, Swiper, Weights, WeightRestriction, VirtualUsers};
//!
//! # fn main() -> Result<(), swiper_core::CoreError> {
//! // Stake of five validators.
//! let weights = Weights::new(vec![3_400, 2_100, 900, 420, 77])?;
//!
//! // Tolerate f_w < 1/3 corrupt weight while running a nominal protocol
//! // with a 1/2 threshold (e.g. a randomness beacon, Section 4.1).
//! let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
//! let solution = Swiper::new().solve_restriction(&weights, &params)?;
//!
//! // Hand each party `t_i` virtual users of the nominal protocol.
//! let mapping = VirtualUsers::from_assignment(&solution.assignment)?;
//! assert!(mapping.total() as u128 == solution.total_tickets());
//! # Ok(())
//! # }
//! ```
//!
//! ## The `ValidityOracle` layer
//!
//! The solver is split into a problem-shape-agnostic binary search and a
//! pluggable validity judgement, the [`ValidityOracle`] trait. The search
//! walks the totally-ordered `t(s, k)` family between the invalid all-zero
//! member and the theoretical-bound member, asking the oracle one question
//! per candidate: [`oracle::ValidityOracle::check`] on a
//! [`FamilyMember`] under fixed [`CheckParams`], answered with a
//! [`Verdict`].
//!
//! The contract an oracle must honour:
//!
//! 1. **Soundness** — never answer [`Verdict::Valid`] for a member that
//!    violates the problem property. Solutions inherit their validity from
//!    this alone.
//! 2. **Bootstrapping compatibility** — the member carrying the
//!    Theorem 2.1/2.3/2.4 bound total may be rejected only if the oracle
//!    is *exact*; conservative oracles must accept it, or the search's
//!    upper anchor breaks. (Both stock oracles satisfy this: the
//!    fractional bound certifies the bound member.)
//! 3. **Local minima, not a unique flip** — the predicate "member with
//!    total `T` is valid" is mostly monotone along the family but dips on
//!    real distributions (isolated `V.VVV` patterns near the flip), so a
//!    bracketing search lands on *a* local minimum — which is all
//!    Appendix A needs for the ticket bounds. Cold and warm-started
//!    brackets usually agree; see [`Swiper::resolve_from`] for when they
//!    may not.
//! 4. **Drainable stats** — [`oracle::ValidityOracle::take_stats`]
//!    returns counters accumulated since the previous drain, so one
//!    oracle instance can be recycled across a whole
//!    [`Swiper::solve_many`] sweep and still yield per-solve
//!    [`SolveStats`]. The search driver drains after every solve —
//!    including aborted ones — and itself owns the search-shaped
//!    counters (`candidates_checked`, `settled_by_theorem`); oracles
//!    only fill the settlement counters.
//!
//! Stock implementations: [`FullOracle`] (exact; quick-test cascade with
//! memoized sorted prefix sums and DP scratch) and [`LinearOracle`]
//! (conservative bound only). Custom oracles plug in through
//! [`Swiper::solve_restriction_with`] and friends — the intended seam for
//! verdict caching and incremental re-solve on weight deltas.
//!
//! ## Batch solving
//!
//! [`Swiper::solve_many`] solves a slice of [`Instance`]s across OS
//! threads (instances are embarrassingly parallel) with deterministic,
//! input-order results; each worker thread recycles one oracle's scratch
//! across its share.
//!
//! ## Supported envelope
//!
//! Party weights are `u64` (quantize with [`Weights::from_floats`] if
//! needed); threshold rationals may have numerator/denominator up to
//! `~2^20`; computed ticket bounds are capped at `2^40`
//! ([`problems::MAX_TICKET_BOUND`]). Inside this envelope all arithmetic is
//! exact — the solver never touches floating point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod epoch_event;
mod error;
mod family;
mod ratio;
mod weights;

pub mod exact;
pub mod fairness;
pub mod inverse;
pub mod knapsack;
pub mod oracle;
pub mod problems;
pub mod sampling;
pub mod solver;
pub mod verify;
pub mod virtual_users;
pub mod wide;

pub use assignment::TicketAssignment;
pub use epoch_event::EpochEvent;
pub use error::CoreError;
pub use oracle::{
    CachingOracle, CertKind, CertifyingOracle, CheckParams, FamilyMember, FullOracle,
    LinearOracle, ValidityOracle, Verdict, VerdictCertificate,
};
pub use problems::{WeightQualification, WeightRestriction, WeightSeparation};
pub use ratio::Ratio;
pub use solver::{Instance, Mode, Solution, SolveStats, Swiper};
pub use verify::{verify_qualification, verify_restriction, verify_separation};
pub use virtual_users::{PartyId, StableId, TicketChange, TicketDelta, VirtualUsers};
pub use weights::Weights;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn crate_level_example_compiles_and_runs() {
        let weights = Weights::new(vec![3_400, 2_100, 900, 420, 77]).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let solution = Swiper::new().solve_restriction(&weights, &params).unwrap();
        assert!(verify_restriction(&weights, &solution.assignment, &params).unwrap());
        let mapping = VirtualUsers::from_assignment(&solution.assignment).unwrap();
        assert_eq!(mapping.total() as u128, solution.total_tickets());
    }
}
