//! The inverse weight reduction problem (paper Section 8, "Application in
//! Aptos blockchain").
//!
//! The Aptos on-chain randomness deployment considers the problem the
//! other way round: *"the number of tickets is fixed and the gap between
//! alpha and beta is minimized. Note that one can trivially reduce one
//! problem to the other (in both directions) by using a binary search."*
//!
//! [`min_alpha_n_for_budget`] implements exactly that reduction for Weight
//! Restriction: given a ticket budget, find the smallest ticket-side
//! threshold `alpha_n` (on a denominator grid) whose Swiper solution fits
//! the budget — the smaller `alpha_n` is, the cheaper the nominal
//! threshold scheme the tickets can drive.

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::problems::WeightRestriction;
use crate::ratio::Ratio;
use crate::solver::Swiper;
use crate::weights::Weights;

/// Result of the inverse search.
#[derive(Debug, Clone)]
pub struct InverseSolution {
    /// The minimized ticket-side threshold.
    pub alpha_n: Ratio,
    /// The ticket assignment achieving it within the budget.
    pub assignment: TicketAssignment,
}

/// Finds the smallest `alpha_n = p / denominator` (with
/// `alpha_w < alpha_n < 1`) such that Swiper's WR solution allocates at
/// most `budget` tickets. Returns `None` when even the loosest grid
/// threshold (`(denominator - 1) / denominator`) exceeds the budget.
///
/// The search is a binary search over the grid (ticket totals are
/// monotone non-increasing in `alpha_n` for Swiper's family up to local
/// non-monotonicity; a final downward scan of one step compensates).
///
/// # Errors
///
/// * [`CoreError::ThresholdOutOfRange`] for an invalid `alpha_w` or a
///   denominator smaller than 2.
/// * Propagates solver errors.
pub fn min_alpha_n_for_budget(
    weights: &Weights,
    alpha_w: Ratio,
    budget: u64,
    denominator: u128,
    solver: &Swiper,
) -> Result<Option<InverseSolution>, CoreError> {
    if denominator < 2 {
        return Err(CoreError::ThresholdOutOfRange { what: "denominator must be >= 2" });
    }
    if !alpha_w.is_proper() {
        return Err(CoreError::ThresholdOutOfRange { what: "alpha_w must be in (0, 1)" });
    }
    // Grid numerators p with alpha_w < p/den < 1.
    let lo_p = {
        // smallest p with p/den > alpha_w: p = floor(aw * den) + 1.
        let f = alpha_w.num() * denominator / alpha_w.den();
        f + 1
    };
    let hi_p = denominator - 1;
    if lo_p > hi_p {
        return Err(CoreError::InfeasibleThresholds {
            what: "no grid point strictly between alpha_w and 1",
        });
    }
    let solve = |p: u128| -> Result<Option<TicketAssignment>, CoreError> {
        let alpha_n = Ratio::new(p, denominator)?;
        if alpha_w >= alpha_n {
            return Ok(None);
        }
        let params = WeightRestriction::new(alpha_w, alpha_n)?;
        match solver.solve_restriction(weights, &params) {
            Ok(sol) if sol.total_tickets() <= u128::from(budget) => Ok(Some(sol.assignment)),
            Ok(_) => Ok(None),
            // Bound explosions near alpha_w count as "does not fit".
            Err(CoreError::BoundTooLarge { .. }) | Err(CoreError::ArithmeticOverflow) => {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    };

    // The loosest grid point must fit, else there is no solution.
    if solve(hi_p)?.is_none() {
        return Ok(None);
    }
    let (mut lo, mut hi) = (lo_p, hi_p); // invariant: hi fits
    let mut hi_assignment = None;
    while hi - lo > 0 {
        let mid = lo + (hi - lo) / 2;
        match solve(mid)? {
            Some(assignment) => {
                hi = mid;
                hi_assignment = Some(assignment);
            }
            None => lo = mid + 1,
        }
    }
    // `hi` is the bisection answer; compensate for local non-monotonicity
    // by probing a few grid points below it.
    let mut best_p = hi;
    let mut best = match hi_assignment {
        Some(a) => a,
        None => solve(hi)?.expect("hi fits by invariant"),
    };
    let probe_floor = lo_p.max(hi.saturating_sub(4));
    for p in (probe_floor..hi).rev() {
        if let Some(a) = solve(p)? {
            best_p = p;
            best = a;
        }
    }
    Ok(Some(InverseSolution { alpha_n: Ratio::new(best_p, denominator)?, assignment: best }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_restriction;

    fn weights() -> Weights {
        Weights::new(vec![500, 300, 120, 50, 20, 10]).unwrap()
    }

    #[test]
    fn budget_trades_against_threshold() {
        let w = weights();
        let aw = Ratio::of(1, 3);
        let solver = Swiper::new();
        // A generous budget admits a small alpha_n; a tight budget forces
        // a larger one.
        let generous = min_alpha_n_for_budget(&w, aw, 100, 100, &solver).unwrap().unwrap();
        let tight = min_alpha_n_for_budget(&w, aw, 4, 100, &solver).unwrap().unwrap();
        assert!(generous.alpha_n <= tight.alpha_n);
        assert!(generous.assignment.total() <= 100);
        assert!(tight.assignment.total() <= 4);
    }

    #[test]
    fn result_is_valid_for_its_threshold() {
        let w = weights();
        let aw = Ratio::of(1, 3);
        let sol = min_alpha_n_for_budget(&w, aw, 10, 100, &Swiper::new()).unwrap().unwrap();
        let params = WeightRestriction::new(aw, sol.alpha_n).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &params).unwrap());
    }

    #[test]
    fn matches_linear_scan_on_small_grid() {
        let w = weights();
        let aw = Ratio::of(1, 4);
        let solver = Swiper::new();
        let budget = 12u64;
        let den = 20u128;
        let bisect = min_alpha_n_for_budget(&w, aw, budget, den, &solver).unwrap().unwrap();
        // Reference: smallest grid point that fits, by linear scan.
        let mut reference = None;
        for p in 6..20u128 {
            let an = Ratio::new(p, den).unwrap();
            if aw >= an {
                continue;
            }
            let params = WeightRestriction::new(aw, an).unwrap();
            if let Ok(sol) = solver.solve_restriction(&w, &params) {
                if sol.total_tickets() <= u128::from(budget) {
                    reference = Some(an);
                    break;
                }
            }
        }
        let reference = reference.expect("some grid point fits");
        // Bisection + probe may land at most a few grid steps above the
        // true minimum when totals are locally non-monotone; it must never
        // be below it (below would violate the budget-fit of `reference`
        // minimality) and here should match exactly.
        assert_eq!(bisect.alpha_n, reference);
    }

    #[test]
    fn impossible_budget_returns_none() {
        // Budget 0 can never be met (assignments need >= 1 ticket).
        let w = weights();
        let r = min_alpha_n_for_budget(&w, Ratio::of(1, 3), 0, 100, &Swiper::new()).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn parameter_validation() {
        let w = weights();
        assert!(min_alpha_n_for_budget(&w, Ratio::of(1, 3), 5, 1, &Swiper::new()).is_err());
        assert!(min_alpha_n_for_budget(&w, Ratio::ONE, 5, 10, &Swiper::new()).is_err());
        // alpha_w = 9/10 with denominator 10: no grid point above it.
        assert!(matches!(
            min_alpha_n_for_budget(&w, Ratio::of(9, 10), 5, 10, &Swiper::new()),
            Err(CoreError::InfeasibleThresholds { .. })
        ));
    }
}
