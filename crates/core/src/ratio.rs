//! Exact non-negative rational numbers.
//!
//! [`Ratio`] plays the role of Python's `Fraction` in the reference Swiper
//! prototype: thresholds (`alpha_w`, `alpha_n`, ...) and the scaling parameter
//! `s` are represented exactly so that ticket assignments are deterministic
//! and reproducible across machines, a property the paper relies on
//! ("Determinism", Section 3).

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::wide::cmp_mul;

/// Greatest common divisor for `u128` (binary-free classic Euclid; inputs in
/// this crate are small enough that the simple version is fine).
pub(crate) fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// An exact non-negative rational number `num / den` kept in reduced form.
///
/// # Examples
///
/// ```
/// use swiper_core::Ratio;
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let third = Ratio::new(1, 3)?;
/// let half = Ratio::new(2, 4)?; // reduced to 1/2
/// assert!(third < half);
/// assert_eq!(half.to_string(), "1/2");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ratio {
    num: u128,
    den: u128,
}

impl Ratio {
    /// The rational zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates a reduced rational.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroDenominator`] when `den == 0`.
    pub fn new(num: u128, den: u128) -> Result<Self, CoreError> {
        if den == 0 {
            return Err(CoreError::ZeroDenominator);
        }
        let g = gcd_u128(num, den);
        if g == 0 {
            // num == 0 && den == 0 is impossible here; num == 0 gives g = den.
            return Ok(Ratio { num: 0, den: 1 });
        }
        Ok(Ratio { num: num / g, den: den / g })
    }

    /// Creates `num/den` from small literals, panicking on a zero denominator.
    ///
    /// Convenience for tests and tables of constants.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn of(num: u128, den: u128) -> Self {
        Self::new(num, den).expect("denominator must be non-zero")
    }

    /// Numerator of the reduced form.
    pub fn num(&self) -> u128 {
        self.num
    }

    /// Denominator of the reduced form (always >= 1).
    pub fn den(&self) -> u128 {
        self.den
    }

    /// Whether this ratio lies strictly inside the open interval `(0, 1)`,
    /// the domain the weight reduction problems require for all thresholds.
    pub fn is_proper(&self) -> bool {
        self.num > 0 && self.num < self.den
    }

    /// `1 - self`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ThresholdOutOfRange`] when `self > 1`.
    pub fn one_minus(&self) -> Result<Self, CoreError> {
        if self.num > self.den {
            return Err(CoreError::ThresholdOutOfRange { what: "cannot take 1 - r for r > 1" });
        }
        Ratio::new(self.den - self.num, self.den)
    }

    /// Exact sum, erroring on overflow.
    pub fn checked_add(&self, other: &Ratio) -> Result<Self, CoreError> {
        let num = self
            .num
            .checked_mul(other.den)
            .and_then(|l| other.num.checked_mul(self.den).and_then(|r| l.checked_add(r)))
            .ok_or(CoreError::ArithmeticOverflow)?;
        let den = self.den.checked_mul(other.den).ok_or(CoreError::ArithmeticOverflow)?;
        Ratio::new(num, den)
    }

    /// Exact product, erroring on overflow.
    pub fn checked_mul(&self, other: &Ratio) -> Result<Self, CoreError> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd_u128(self.num, other.den).max(1);
        let g2 = gcd_u128(other.num, self.den).max(1);
        let num =
            (self.num / g1).checked_mul(other.num / g2).ok_or(CoreError::ArithmeticOverflow)?;
        let den =
            (self.den / g2).checked_mul(other.den / g1).ok_or(CoreError::ArithmeticOverflow)?;
        Ratio::new(num, den)
    }

    /// Exact difference `self - other`, erroring when it would be negative.
    pub fn checked_sub(&self, other: &Ratio) -> Result<Self, CoreError> {
        if *self < *other {
            return Err(CoreError::ThresholdOutOfRange { what: "negative ratio difference" });
        }
        let l = self.num.checked_mul(other.den).ok_or(CoreError::ArithmeticOverflow)?;
        let r = other.num.checked_mul(self.den).ok_or(CoreError::ArithmeticOverflow)?;
        let den = self.den.checked_mul(other.den).ok_or(CoreError::ArithmeticOverflow)?;
        Ratio::new(l - r, den)
    }

    /// Exact division by two (used for the Weight Separation constant
    /// `c = (alpha + beta) / 2`).
    pub fn halved(&self) -> Result<Self, CoreError> {
        let den = self.den.checked_mul(2).ok_or(CoreError::ArithmeticOverflow)?;
        Ratio::new(self.num, den)
    }

    /// Compares `self` with the rational `p/q` (`q != 0`) exactly.
    pub fn cmp_frac(&self, p: u128, q: u128) -> Ordering {
        assert!(q != 0, "cmp_frac with zero denominator");
        cmp_mul(self.num, q, p, self.den)
    }

    /// `floor(self * x)` without overflow.
    pub fn floor_mul(&self, x: u128) -> Result<u128, CoreError> {
        crate::wide::mul_div_floor(self.num, x, self.den).ok_or(CoreError::ArithmeticOverflow)
    }

    /// `ceil(self * x)` without overflow.
    pub fn ceil_mul(&self, x: u128) -> Result<u128, CoreError> {
        let fl = self.floor_mul(x)?;
        // ceil = floor + 1 unless the product is an integer.
        let exact = crate::wide::mul_u128(self.num, x);
        let rem_is_zero = {
            let q = crate::wide::mul_div_floor(self.num, x, self.den)
                .ok_or(CoreError::ArithmeticOverflow)?;
            crate::wide::mul_u128(q, self.den) == exact
        };
        if rem_is_zero {
            Ok(fl)
        } else {
            fl.checked_add(1).ok_or(CoreError::ArithmeticOverflow)
        }
    }

    /// Approximate `f64` value, for reporting only — never used in solver
    /// decisions.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Parses a ratio from a `p/q` or integer string.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ParseRatio`] for malformed input and
    /// [`CoreError::ZeroDenominator`] for a zero denominator.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        let mk_err = || CoreError::ParseRatio { input: s.to_string() };
        match s.split_once('/') {
            Some((p, q)) => {
                let p: u128 = p.trim().parse().map_err(|_| mk_err())?;
                let q: u128 = q.trim().parse().map_err(|_| mk_err())?;
                Ratio::new(p, q)
            }
            None => {
                let p: u128 = s.trim().parse().map_err(|_| mk_err())?;
                Ok(Ratio { num: p, den: 1 })
            }
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_mul(self.num, other.den, other.num, self.den)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Self {
        Ratio { num: u128::from(v), den: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduces_on_construction() {
        let r = Ratio::of(6, 8);
        assert_eq!((r.num(), r.den()), (3, 4));
    }

    #[test]
    fn zero_numerator_normalizes() {
        let r = Ratio::of(0, 17);
        assert_eq!((r.num(), r.den()), (0, 1));
        assert_eq!(r, Ratio::ZERO);
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(matches!(Ratio::new(1, 0), Err(CoreError::ZeroDenominator)));
    }

    #[test]
    fn ordering_is_exact_for_huge_values() {
        // 2^127/(2^127+1) < 1 but f64 cannot tell them apart.
        let big = 1u128 << 127;
        let r = Ratio::of(big, big + 1);
        assert!(r < Ratio::ONE);
        assert!(r > Ratio::of(big - 1, big));
    }

    #[test]
    fn is_proper_boundaries() {
        assert!(!Ratio::ZERO.is_proper());
        assert!(!Ratio::ONE.is_proper());
        assert!(Ratio::of(1, 2).is_proper());
        assert!(!Ratio::of(3, 2).is_proper());
    }

    #[test]
    fn one_minus_works() {
        assert_eq!(Ratio::of(1, 3).one_minus().unwrap(), Ratio::of(2, 3));
        assert_eq!(Ratio::ONE.one_minus().unwrap(), Ratio::ZERO);
        assert!(Ratio::of(3, 2).one_minus().is_err());
    }

    #[test]
    fn floor_ceil_mul() {
        let r = Ratio::of(2, 3);
        assert_eq!(r.floor_mul(10).unwrap(), 6);
        assert_eq!(r.ceil_mul(10).unwrap(), 7);
        assert_eq!(r.ceil_mul(9).unwrap(), 6); // exact product
        assert_eq!(r.floor_mul(9).unwrap(), 6);
    }

    #[test]
    fn halved_and_add() {
        let a = Ratio::of(1, 4);
        let b = Ratio::of(1, 3);
        let c = a.checked_add(&b).unwrap().halved().unwrap();
        assert_eq!(c, Ratio::of(7, 24));
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(Ratio::parse("3/9").unwrap(), Ratio::of(1, 3));
        assert_eq!(Ratio::parse("2").unwrap(), Ratio::of(2, 1));
        assert!(Ratio::parse("x/3").is_err());
        assert!(Ratio::parse("1/0").is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ratio::of(5, 10).to_string(), "1/2");
        assert_eq!(Ratio::of(4, 2).to_string(), "2");
    }

    proptest! {
        #[test]
        fn ord_matches_f64_when_safe(
            a in 0u32..10_000, b in 1u32..10_000,
            c in 0u32..10_000, d in 1u32..10_000,
        ) {
            let r1 = Ratio::of(a.into(), b.into());
            let r2 = Ratio::of(c.into(), d.into());
            let exact = r1.cmp(&r2);
            let approx = (f64::from(a) / f64::from(b))
                .partial_cmp(&(f64::from(c) / f64::from(d)))
                .unwrap();
            // Small integers are exactly representable in f64, so they agree.
            prop_assert_eq!(exact, approx);
        }

        #[test]
        fn add_then_sub_round_trips(
            a in 0u64..1_000_000, b in 1u64..1_000_000,
            c in 0u64..1_000_000, d in 1u64..1_000_000,
        ) {
            let r1 = Ratio::of(a.into(), b.into());
            let r2 = Ratio::of(c.into(), d.into());
            let sum = r1.checked_add(&r2).unwrap();
            prop_assert_eq!(sum.checked_sub(&r2).unwrap(), r1);
        }

        #[test]
        fn floor_mul_matches_naive(p in 0u64..1_000, q in 1u64..1_000, x in 0u64..1_000_000) {
            let r = Ratio::of(p.into(), q.into());
            let expect = u128::from(p) * u128::from(x) / u128::from(q);
            prop_assert_eq!(r.floor_mul(x.into()).unwrap(), expect);
        }

        #[test]
        fn ceil_minus_floor_is_at_most_one(p in 0u64..1_000, q in 1u64..1_000, x in 0u64..1_000_000) {
            let r = Ratio::of(p.into(), q.into());
            let fl = r.floor_mul(x.into()).unwrap();
            let ce = r.ceil_mul(x.into()).unwrap();
            prop_assert!(ce == fl || ce == fl + 1);
            // ceil == floor exactly when q divides p*x.
            let exact = (u128::from(p) * u128::from(x)) % u128::from(q) == 0;
            prop_assert_eq!(ce == fl, exact);
        }
    }
}
