//! Error types for the weight reduction solver.

use std::error::Error;
use std::fmt;

/// Errors produced by `swiper-core` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A rational was constructed with a zero denominator.
    ZeroDenominator,
    /// A ratio string could not be parsed.
    ParseRatio {
        /// The offending input.
        input: String,
    },
    /// A threshold falls outside the domain required by the problem
    /// definitions (all thresholds must lie strictly inside `(0, 1)`).
    ThresholdOutOfRange {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// The problem parameters leave no gap for the solver
    /// (e.g. `alpha_w >= alpha_n` for Weight Restriction).
    InfeasibleThresholds {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// The total weight is zero; the problems require `W != 0`.
    ZeroTotalWeight,
    /// The party set is empty.
    NoParties,
    /// An intermediate computation exceeded 128 bits. The inputs are outside
    /// the supported envelope (see crate docs for the exact limits).
    ArithmeticOverflow,
    /// The theoretical ticket bound is too large to solve for
    /// (thresholds too close together for this input size).
    BoundTooLarge {
        /// The computed bound that exceeded the supported maximum.
        bound: u128,
    },
    /// An epoch stream changed the party *count* between consecutive
    /// snapshots. Party sets are fixed across epochs (deltas rename no
    /// one); a grown or shrunk roster needs a new deployment, and
    /// validating it at the API boundary beats the late `DeltaMismatch`
    /// the stale-base check would eventually raise deep in `apply_delta`.
    PartyCountChanged {
        /// Parties in the previous epoch's snapshot.
        expected: usize,
        /// Parties in the offending snapshot.
        found: usize,
    },
    /// A ticket delta does not match the state it is being applied to or
    /// diffed against (party-count mismatch, stale base tickets, ...).
    DeltaMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
    /// A keyed input contained the same identifier twice (e.g. duplicate
    /// validator rows in a stake snapshot).
    DuplicateKey {
        /// The repeated identifier.
        key: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ZeroDenominator => write!(f, "denominator must be non-zero"),
            CoreError::ParseRatio { input } => {
                write!(f, "cannot parse `{input}` as a ratio (expected `p/q` or integer)")
            }
            CoreError::ThresholdOutOfRange { what } => {
                write!(f, "threshold out of range: {what}")
            }
            CoreError::InfeasibleThresholds { what } => {
                write!(f, "infeasible thresholds: {what}")
            }
            CoreError::ZeroTotalWeight => write!(f, "total weight must be non-zero"),
            CoreError::NoParties => write!(f, "at least one party is required"),
            CoreError::ArithmeticOverflow => {
                write!(f, "arithmetic overflow: inputs exceed the supported envelope")
            }
            CoreError::BoundTooLarge { bound } => {
                write!(f, "ticket bound {bound} exceeds the supported maximum")
            }
            CoreError::PartyCountChanged { expected, found } => {
                write!(
                    f,
                    "snapshot changes the party count ({expected} -> {found}) without a \
                     matching delta: party sets are fixed across epochs"
                )
            }
            CoreError::DeltaMismatch { what } => {
                write!(f, "ticket delta mismatch: {what}")
            }
            CoreError::DuplicateKey { key } => {
                write!(f, "duplicate keyed entry `{key}`")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<CoreError> = vec![
            CoreError::ZeroDenominator,
            CoreError::ParseRatio { input: "x".into() },
            CoreError::ThresholdOutOfRange { what: "t" },
            CoreError::InfeasibleThresholds { what: "t" },
            CoreError::ZeroTotalWeight,
            CoreError::NoParties,
            CoreError::ArithmeticOverflow,
            CoreError::BoundTooLarge { bound: 7 },
            CoreError::PartyCountChanged { expected: 3, found: 4 },
            CoreError::DeltaMismatch { what: "t" },
            CoreError::DuplicateKey { key: "k".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(CoreError::ZeroTotalWeight);
    }
}
