//! Knapsack machinery for validating ticket assignments.
//!
//! Verifying a Weight Restriction solution asks: can the adversary pick a
//! subset `S` with `w(S)` below the weight capacity whose tickets `t(S)`
//! reach the ticket threshold? That is a 0/1 knapsack with profits `t_i`
//! and weights `w_i` (paper, Section 3.1 — "verifying a solution ... is
//! equivalent to solving a particular instance of Knapsack").
//!
//! Three evaluators are provided, mirroring the paper's design:
//!
//! * [`max_profit_dp`] — exact "dynamic programming by profits"
//!   (Kellerer–Pferschy–Pisinger, Lemma 2.3.2), `O(n * profit_cap)`.
//! * [`fractional_upper_bound_reaches`] — the Dantzig LP bound, a
//!   *conservative* test: it can claim a reachable target unreachable-not,
//!   i.e. it never claims "safe" when unsafe (no false "valid").
//! * [`greedy_lower_bound_reaches`] — a feasible greedy packing, a *liberal*
//!   test: when greedy reaches the target the target is certainly reachable.
//!
//! Combining the two bounds yields the three-valued [`quick_test`] used by
//! Swiper's full mode to dodge most DP invocations.
//!
//! ## DP kernel
//!
//! The DP is organised for whale-skewed, large-`n` populations:
//!
//! * **Dominated-item prefilter.** Items heavier than the weight horizon are
//!   dropped outright; items whose profit saturates the cap collapse to the
//!   single lightest such item; and when the item count exceeds the harmonic
//!   bound `cap · (log cap + 2)`, each distinct profit class `p` is reduced
//!   to its `ceil(cap / p)` lightest members — any subset with profit at
//!   most `cap` uses at most that many items of class `p`, and an exchange
//!   argument lets it use the lightest ones. Million-item inputs shrink to
//!   `O(cap log cap)` items before the table is touched.
//! * **Flat min-weight-per-profit inner loop.** The per-item update is a
//!   flat saturating min-fold over the table — no data-dependent `INF` skip
//!   branch — bounded by the current reach.
//! * **Monotone-frontier pruning.** `dp[p]` = min weight to reach profit
//!   `>= p`, so a state that weighs no less than some higher-profit state
//!   can never matter. Every `PRUNE_STRIDE` items (and before any read)
//!   dominated states are cleared, leaving a strictly increasing
//!   profit/weight frontier.
//! * **Chunked parallel item blocks.** Large prefiltered inputs with modest
//!   caps are split into per-thread blocks; each block builds its own
//!   frontier and the blocks combine by exact min-plus convolution, which
//!   is associative — results are bit-identical to the sequential fill.
//! * **Profit-class Monge decomposition.** When the surviving items bunch
//!   into few distinct profit values — the shape of every at-scale ticket
//!   vector, where hundreds of thousands of parties hold one or two
//!   tickets — each class collapses to its convex lightest-`k`
//!   prefix-weight curve, and folding a class is a min-plus convolution
//!   with a convex sequence: a Monge minimization solved by monotone
//!   divide-and-conquer in `O(cap log cap)` per class instead of
//!   `O(items · cap)` overall. This is what holds the near-flip decision
//!   DP at a million parties to tens of milliseconds.

use crate::wide::cmp_mul;
use std::cmp::Ordering;

/// Outcome of the quasilinear [`quick_test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuickOutcome {
    /// The LP bound is below the target: the target is certainly
    /// unreachable (assignment certainly valid).
    CertainlyUnreachable,
    /// A greedy packing reaches the target: certainly reachable
    /// (assignment certainly invalid).
    CertainlyReachable,
    /// The bounds disagree; an exact method must decide.
    Uncertain,
}

/// A knapsack view over parties: profit `t_i` (tickets), weight `w_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Profit (tickets of the party).
    pub profit: u64,
    /// Weight of the party.
    pub weight: u64,
}

const INF: u128 = u128::MAX;

/// Items between frontier prunes in the DP fill. Pruning costs `O(cap)`, so
/// amortize it across a block of items while still keeping the table mostly
/// frontier-shaped for the reach bound.
const PRUNE_STRIDE: usize = 128;

/// Reusable buffer for [`max_profit_dp_with`]: callers running many DP
/// invocations (the solver's binary search, batch sweeps) keep one scratch
/// alive and avoid reallocating the `O(profit_cap)` table per call.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    dp: Vec<u128>,
    kept: Vec<Item>,
}

/// Exact min-weight frontier produced by [`max_profit_dp_probe`].
///
/// `frontier` lists `(total profit, min weight)` pairs, strictly increasing
/// in both coordinates, including the trivial `(free profit, 0)` entry. For
/// any `q <= profit_cap + free`, the minimum weight of a subset with profit
/// `>= q` is the weight of the first entry with profit `>= q`; if no such
/// entry exists, that minimum exceeds `prune_limit`. Entries are exact as
/// long as their weight is at most `prune_limit`.
#[derive(Debug, Clone, Default)]
pub struct DpProbe {
    /// Exact maximum total profit within `capacity`, saturated at
    /// `profit_cap` — identical to [`max_profit_dp`].
    pub best: u64,
    /// The pruned min-weight frontier (see type docs).
    pub frontier: Vec<(u64, u128)>,
    /// Weight horizon the table is exact to (`capacity + slack`).
    pub prune_limit: u128,
}

/// Exact maximum achievable profit, saturated at `profit_cap`, over subsets
/// whose weight is at most `capacity`.
///
/// Dynamic programming by profits: `dp[p]` = minimum weight needed to reach
/// profit at least `p` (profits saturate at `profit_cap`). Runtime
/// `O(n * profit_cap)` worst case, heavily reduced by the prefilter and
/// frontier pruning described in the module docs; memory `O(profit_cap)`.
///
/// # Panics
///
/// Panics if `profit_cap` does not fit in `usize` (bounded by
/// [`crate::problems::MAX_TICKET_BOUND`] upstream).
pub fn max_profit_dp(items: &[Item], capacity: u128, profit_cap: u64) -> u64 {
    max_profit_dp_with(&mut DpScratch::default(), items, capacity, profit_cap)
}

/// [`max_profit_dp`] reusing a caller-held scratch buffer across calls.
///
/// # Panics
///
/// Panics if `profit_cap` does not fit in `usize`.
pub fn max_profit_dp_with(
    scratch: &mut DpScratch,
    items: &[Item],
    capacity: u128,
    profit_cap: u64,
) -> u64 {
    let cap = usize::try_from(profit_cap).expect("profit cap fits usize");
    let free = split_free(&mut scratch.kept, items, capacity);
    if free >= u128::from(profit_cap) {
        return profit_cap;
    }
    let free = free as u64;
    reduce_items(&mut scratch.kept, cap);
    dp_table(&mut scratch.dp, &scratch.kept, cap, capacity, Some(capacity));
    // Highest finite frontier state within capacity.
    let mut best = 0u64;
    for (p, &w) in scratch.dp.iter().enumerate().rev() {
        if w <= capacity {
            best = p as u64;
            break;
        }
    }
    (best + free).min(profit_cap)
}

/// Certificate-grade variant of [`max_profit_dp`]: additionally returns the
/// exact min-weight frontier, explored out to `capacity + slack` so callers
/// can measure *how far* each profit level is from feasibility (the margin
/// behind delta-stable verdict certificates in [`crate::oracle`]).
///
/// # Panics
///
/// Panics if `profit_cap` does not fit in `usize`.
pub fn max_profit_dp_probe(
    scratch: &mut DpScratch,
    items: &[Item],
    capacity: u128,
    profit_cap: u64,
    slack: u128,
) -> DpProbe {
    let cap = usize::try_from(profit_cap).expect("profit cap fits usize");
    let prune_limit = capacity.saturating_add(slack);
    let free = split_free(&mut scratch.kept, items, prune_limit);
    if free >= u128::from(profit_cap) {
        return DpProbe { best: profit_cap, frontier: vec![(profit_cap, 0)], prune_limit };
    }
    let free = free as u64;
    reduce_items(&mut scratch.kept, cap);
    dp_table(&mut scratch.dp, &scratch.kept, cap, prune_limit, None);
    let mut frontier = Vec::new();
    let mut best = 0u64;
    for (p, &w) in scratch.dp.iter().enumerate() {
        if w != INF {
            frontier.push((p as u64 + free, w));
            if w <= capacity {
                best = p as u64;
            }
        }
    }
    DpProbe { best: (best + free).min(profit_cap), frontier, prune_limit }
}

/// Splits out free profit (zero-weight items) and keeps only items that can
/// participate: positive profit, weight within the horizon. Returns the
/// (unsaturated) free profit.
fn split_free(kept: &mut Vec<Item>, items: &[Item], prune_limit: u128) -> u128 {
    let mut free: u128 = 0;
    kept.clear();
    for it in items {
        if it.profit == 0 || u128::from(it.weight) > prune_limit {
            continue;
        }
        if it.weight == 0 {
            free += u128::from(it.profit);
        } else {
            kept.push(*it);
        }
    }
    free
}

/// The dominated-item prefilter: collapses cap-saturating items to the
/// single lightest one and, when worthwhile, keeps only the `ceil(cap / p)`
/// lightest items of each profit class `p`. Exact for the cap-saturated DP:
/// any subset with (saturated) profit `q <= cap` takes at most
/// `floor(cap / p)` items of class `p`, and swapping any member for a
/// lighter same-profit item never hurts.
fn reduce_items(kept: &mut Vec<Item>, cap: usize) {
    let cap64 = cap as u64;
    // Items whose profit alone saturates the table: only the lightest can
    // ever be preferable, and no subset needs two of them.
    let mut sat: Option<Item> = None;
    kept.retain(|it| {
        if it.profit >= cap64 {
            if sat.is_none_or(|s| it.weight < s.weight) {
                sat = Some(*it);
            }
            false
        } else {
            true
        }
    });
    // Harmonic bound on the reduced size; skip the sort when the input is
    // already at least that small.
    let log2 = usize::BITS - cap.leading_zeros();
    let bound = (cap as u128).saturating_mul(u128::from(log2) + 2);
    if (kept.len() as u128) > bound {
        kept.sort_unstable_by(|a, b| a.profit.cmp(&b.profit).then(a.weight.cmp(&b.weight)));
        let mut out = 0usize;
        let mut i = 0usize;
        while i < kept.len() {
            let p = kept[i].profit;
            let mut end = i + 1;
            while end < kept.len() && kept[end].profit == p {
                end += 1;
            }
            let keep = usize::try_from(cap64.div_ceil(p)).unwrap_or(usize::MAX).min(end - i);
            for j in i..i + keep {
                kept[out] = kept[j];
                out += 1;
            }
            i = end;
        }
        kept.truncate(out);
    }
    if let Some(s) = sat {
        kept.push(s);
    }
}

/// Clears states dominated by an equal-or-lighter state of higher profit;
/// afterwards finite entries are strictly increasing in weight. Returns the
/// highest finite index.
fn prune_frontier(dp: &mut [u128]) -> usize {
    let mut best = INF;
    let mut reach = 0usize;
    for q in (1..dp.len()).rev() {
        if dp[q] < best {
            best = dp[q];
            if reach == 0 {
                reach = q;
            }
        } else {
            dp[q] = INF;
        }
    }
    reach
}

/// Sequential DP fill over `items` into `dp` (which must be a pruned,
/// partially filled table with `dp[0] == 0`). States heavier than
/// `prune_limit` are discarded; with `stop_at` set, the fill returns as soon
/// as the saturated state is reachable within that budget (sound when the
/// caller only needs `best`, not the full frontier). The table is left
/// frontier-pruned.
fn dp_fill(dp: &mut [u128], items: &[Item], prune_limit: u128, stop_at: Option<u128>) {
    let cap = dp.len() - 1;
    let mut reach = prune_frontier(dp);
    for (k, it) in items.iter().enumerate() {
        let p = usize::try_from(it.profit).unwrap_or(cap).min(cap);
        let w = u128::from(it.weight);
        // Flat min-fold: saturating_add keeps INF states INF, and the
        // prune-limit compare rejects them without a dedicated branch.
        for q in (0..=reach).rev() {
            let nw = dp[q].saturating_add(w);
            let np = (q + p).min(cap);
            if nw <= prune_limit && nw < dp[np] {
                dp[np] = nw;
            }
        }
        // Upper bound on the new reach; tightened at each prune.
        reach = (reach + p).min(cap);
        if let Some(budget) = stop_at {
            if dp[cap] <= budget {
                break;
            }
        }
        if k % PRUNE_STRIDE == PRUNE_STRIDE - 1 {
            reach = prune_frontier(dp);
        }
    }
    prune_frontier(dp);
}

/// Minimum worthwhile per-block item count for the parallel fill.
const PAR_MIN_ITEMS: usize = 8192;
/// Largest profit cap where min-plus block merges stay cheap relative to
/// the per-block fills.
const PAR_MAX_CAP: usize = 1 << 13;

/// Minimum total items before the profit-class decomposition is worth its
/// grouping sort.
const CLASS_MIN_ITEMS: usize = 4096;
/// The class path engages only when items bunch: at least this many items
/// per distinct profit value on average. Ticket vectors at scale are
/// exactly this shape (hundreds of thousands of 1- and 2-ticket parties,
/// a handful of whale values); all-distinct profit sets stay on the
/// per-item fills, where the class machinery would only add overhead.
const CLASS_MIN_BUNCHING: usize = 8;
/// Profit classes below this size are folded item-by-item instead of
/// through the Monge minimization — a k-item class costs `O(k * reach)`
/// per-item but `O(cap log cap)` through the convolution, so tiny classes
/// (whales are usually singletons) stay on the cheap side.
const CLASS_MONGE_MIN: usize = 32;
/// Stand-in for `INF` inside the Monge minimization. The monotone-argmin
/// property needs *exact* (non-saturating) arithmetic, so unreachable
/// states enter as this finite sentinel: far above any real weight sum
/// (which the caller's `prune_limit` bounds), far below overflow even
/// when two sentinels add.
const CLASS_INF: u128 = 1 << 110;

/// Fills `dp` (resized and reset here) with the min-weight table for
/// `items`, choosing between the sequential fill, chunked parallel
/// blocks, and the profit-class decomposition. All paths produce
/// identical frontier-pruned tables.
fn dp_table(
    dp: &mut Vec<u128>,
    items: &[Item],
    cap: usize,
    prune_limit: u128,
    stop_at: Option<u128>,
) {
    dp.clear();
    dp.resize(cap + 1, INF);
    dp[0] = 0;
    if class_dp(dp, items, prune_limit, stop_at) {
        return;
    }
    let threads = std::thread::available_parallelism().map_or(1, |t| t.get());
    let chunks = if items.len() >= 2 * PAR_MIN_ITEMS && cap <= PAR_MAX_CAP && threads > 1 {
        threads.min(items.len() / PAR_MIN_ITEMS)
    } else {
        1
    };
    if chunks <= 1 {
        dp_fill(dp, items, prune_limit, stop_at);
    } else {
        dp_chunked(dp, items, prune_limit, chunks);
    }
}

/// Profit-class decomposition of the DP fill (Axiotis–Tzamos style): items
/// sharing a profit `p` collapse into one *convex* step curve — any subset
/// taking `k` of them takes the `k` lightest, whose prefix-weight
/// increments are nondecreasing — and folding a whole class into the table
/// is then a min-plus convolution with a convex sequence. Such a
/// convolution is a Monge minimization (the arbitrary-table terms cancel
/// from the quadrangle inequality; convexity of the curve is exactly what
/// remains), so its argmin is monotone and divide-and-conquer evaluates it
/// in `O((cap/p + k) log)` per residue class mod `p` — `O(cap log cap)`
/// per profit class instead of `O(k * cap)`. Million-party ticket vectors
/// bunch a few hundred thousand items into a few hundred classes, turning
/// the near-flip decision DP from seconds into tens of milliseconds.
///
/// Returns `false` (table untouched beyond the reset) when the input does
/// not bunch enough to pay for the grouping sort; the caller falls back to
/// the per-item fills. When it runs, the resulting frontier-pruned table
/// is identical to the sequential fill's: both compute the exact
/// min-weight-per-profit function over the same subset space, and the
/// final domination prune is path-independent.
fn class_dp(dp: &mut [u128], items: &[Item], prune_limit: u128, stop_at: Option<u128>) -> bool {
    let cap = dp.len() - 1;
    if items.len() < CLASS_MIN_ITEMS || cap == 0 || prune_limit >= CLASS_INF {
        return false;
    }
    let mut sorted = items.to_vec();
    sorted.sort_unstable_by(|a, b| a.profit.cmp(&b.profit).then(a.weight.cmp(&b.weight)));
    let distinct = 1 + sorted.windows(2).filter(|w| w[0].profit != w[1].profit).count();
    if distinct.saturating_mul(CLASS_MIN_BUNCHING) > sorted.len() {
        return false;
    }
    let cap64 = cap as u64;
    // Small classes (and cap-saturating items) fold item-by-item at the
    // end; `dp_fill` also performs the final domination prune.
    let mut loose: Vec<Item> = Vec::new();
    let mut f: Vec<u128> = Vec::new();
    let mut g: Vec<u128> = Vec::new();
    let mut wpfx: Vec<u128> = Vec::new();
    let mut budget_met = false;
    let mut i = 0usize;
    while i < sorted.len() {
        let p = sorted[i].profit;
        let mut end = i + 1;
        while end < sorted.len() && sorted[end].profit == p {
            end += 1;
        }
        let class = &sorted[i..end];
        i = end;
        if p >= cap64 {
            // One such item alone saturates the table; only the lightest
            // (first — the class is weight-sorted) can matter.
            loose.push(class[0]);
            continue;
        }
        // A subset with (saturated) profit <= cap uses at most
        // ceil(cap / p) items of this class, and exchange keeps them the
        // lightest; prefix weights beyond the prune horizon can never
        // participate either.
        let k_cap = usize::try_from(cap64.div_ceil(p)).unwrap_or(usize::MAX);
        let k_use = k_cap.min(class.len());
        if k_use < CLASS_MONGE_MIN {
            loose.extend_from_slice(&class[..k_use]);
            continue;
        }
        wpfx.clear();
        wpfx.push(0);
        let mut acc: u128 = 0;
        for it in &class[..k_use] {
            acc += u128::from(it.weight);
            if acc > prune_limit {
                break;
            }
            wpfx.push(acc);
        }
        let k_max = wpfx.len() - 1;
        if k_max == 0 {
            continue; // even one item of this class overshoots the horizon
        }
        let p_us = p as usize; // p < cap <= usize::MAX
        let mut sat_min = INF;
        for r in 0..p_us.min(cap) {
            // Exact-profit entries of this residue: q = r + p*t < cap.
            let len_f = (cap - r).div_ceil(p_us);
            f.clear();
            f.extend((0..len_f).map(|t| {
                let v = dp[r + t * p_us];
                if v == INF {
                    CLASS_INF
                } else {
                    v
                }
            }));
            // Outputs j carry profit r + p*j; j >= len_f overshoots into
            // the saturated bucket.
            let out_len = len_f + k_max;
            g.clear();
            g.resize(out_len, CLASS_INF);
            monge_fill(&f, &wpfx, &mut g, 0, out_len, 0, len_f - 1);
            for (j, &v) in g.iter().enumerate().take(len_f) {
                dp[r + j * p_us] = if v >= CLASS_INF || v > prune_limit { INF } else { v };
            }
            for &v in &g[len_f..] {
                if v < sat_min {
                    sat_min = v;
                }
            }
        }
        if sat_min <= prune_limit && sat_min < dp[cap] {
            dp[cap] = sat_min;
        }
        if let Some(budget) = stop_at {
            if dp[cap] <= budget {
                budget_met = true;
                break;
            }
        }
    }
    if budget_met {
        prune_frontier(dp);
    } else {
        dp_fill(dp, &loose, prune_limit, stop_at);
    }
    true
}

/// Divide-and-conquer Monge minimization for one residue class:
/// `g[j] = min over i of f[i] + wpfx[j - i]` with `i` restricted to
/// `[j - k_max, j] ∩ [0, f.len() - 1]`. Convexity of `wpfx` makes the
/// leftmost argmin monotone in `j` (the quadrangle inequality cancels the
/// `f` terms exactly — which is why unreachable states are the finite
/// [`CLASS_INF`] rather than a saturating `INF`), so each level of the
/// recursion scans a window bounded by its parent's argmin.
fn monge_fill(
    f: &[u128],
    wpfx: &[u128],
    g: &mut [u128],
    jlo: usize,
    jhi: usize,
    ilo: usize,
    ihi: usize,
) {
    if jlo >= jhi {
        return;
    }
    let jm = jlo + (jhi - jlo) / 2;
    let k_max = wpfx.len() - 1;
    let lo = ilo.max(jm.saturating_sub(k_max));
    let hi = ihi.min(jm).min(f.len() - 1);
    let mut best = u128::MAX;
    let mut best_i = lo;
    for i in lo..=hi {
        let c = f[i] + wpfx[jm - i];
        if c < best {
            best = c;
            best_i = i;
        }
    }
    g[jm] = best;
    monge_fill(f, wpfx, g, jlo, jm, ilo, best_i);
    monge_fill(f, wpfx, g, jm + 1, jhi, best_i, ihi);
}

/// Parallel DP: per-thread blocks each build an independent frontier, then
/// the frontiers combine by exact min-plus convolution (associative, so the
/// result does not depend on the block split).
fn dp_chunked(dp: &mut Vec<u128>, items: &[Item], prune_limit: u128, chunks: usize) {
    let cap = dp.len() - 1;
    let per = items.len().div_ceil(chunks);
    let tables: Vec<Vec<u128>> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(per)
            .map(|block| {
                s.spawn(move || {
                    let mut t = vec![INF; cap + 1];
                    t[0] = 0;
                    dp_fill(&mut t, block, prune_limit, None);
                    t
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("DP block worker panicked")).collect()
    });
    let mut tmp = vec![INF; cap + 1];
    for t in &tables {
        min_plus_merge(dp, t, &mut tmp, prune_limit);
    }
}

/// `acc <- min-plus(acc, add)`, both frontier-pruned: for every finite pair
/// the combined state `(qa + qb, wa + wb)` is folded in, saturating profit
/// at the cap and discarding weights beyond `prune_limit`.
fn min_plus_merge(acc: &mut Vec<u128>, add: &[u128], tmp: &mut Vec<u128>, prune_limit: u128) {
    let cap = acc.len() - 1;
    tmp.clear();
    tmp.resize(cap + 1, INF);
    for (qa, &wa) in acc.iter().enumerate() {
        if wa == INF {
            continue;
        }
        for (qb, &wb) in add.iter().enumerate() {
            if wb == INF {
                continue;
            }
            let nw = wa.saturating_add(wb);
            if nw > prune_limit {
                // Finite entries of a pruned table ascend in weight.
                break;
            }
            let np = (qa + qb).min(cap);
            if nw < tmp[np] {
                tmp[np] = nw;
            }
        }
    }
    prune_frontier(tmp);
    std::mem::swap(acc, tmp);
}

/// A positive-profit, positive-weight party in the ratio-sorted view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    profit: u64,
    weight: u64,
    party: u32,
}

/// Total order of the sorted view: ratio descending with exact
/// cross-multiplied comparisons, denser profit first on ties, then party.
/// Because equal ratio plus equal profit forces equal weight, this is
/// exactly the order the original stable ratio sort produced (ties kept
/// input order, and entries are pushed in party order) — which is what lets
/// [`SortedItems::splice`] target positions by binary search.
fn cmp_entry(a: &Entry, b: &Entry) -> Ordering {
    match cmp_mul(
        u128::from(b.profit),
        u128::from(a.weight),
        u128::from(a.profit),
        u128::from(b.weight),
    ) {
        Ordering::Equal => b.profit.cmp(&a.profit).then(a.party.cmp(&b.party)),
        ord => ord,
    }
}

/// A ratio-sorted item view with prefix sums, shared by every bound query
/// against the same candidate assignment.
///
/// The solver's oracle evaluates up to four bound queries per candidate
/// (two capacities × two bounds for Weight Separation); building this once
/// per candidate replaces one sort *per query* with one sort per candidate,
/// and [`SortedItems::rebuild`] recycles the allocations across the whole
/// binary search. Between epochs, [`SortedItems::splice`] updates only the
/// changed parties instead of re-sorting from scratch. Answers are
/// bit-identical to the one-shot free functions below, which delegate here.
#[derive(Debug, Default, Clone)]
pub struct SortedItems {
    /// Profit of zero-weight items: free under any capacity.
    free: u128,
    /// Positive-weight, positive-profit entries in descending ratio order.
    entries: Vec<Entry>,
    /// `prefix_profit[i]` = total profit of `entries[..i]`.
    prefix_profit: Vec<u128>,
    /// `prefix_weight[i]` = total weight of `entries[..i]` (strictly
    /// increasing: zero weights were split out).
    prefix_weight: Vec<u128>,
    /// Splice scratch, recycled across epochs.
    scratch: Vec<Entry>,
    splice_ins: Vec<Entry>,
    splice_rem: Vec<usize>,
}

impl SortedItems {
    /// Builds the sorted view for `items`.
    #[must_use]
    pub fn new(items: &[Item]) -> Self {
        let mut this = SortedItems::default();
        this.rebuild(items);
        this
    }

    /// Rebuilds the view in place for a new candidate, reusing allocations.
    ///
    /// # Panics
    ///
    /// Panics if `items.len()` exceeds `u32::MAX` parties.
    pub fn rebuild(&mut self, items: &[Item]) {
        self.free = 0;
        self.entries.clear();
        for (i, it) in items.iter().enumerate() {
            if it.profit == 0 {
                continue; // never helps
            }
            if it.weight == 0 {
                self.free += u128::from(it.profit);
            } else {
                let party = u32::try_from(i).expect("party count fits u32");
                self.entries.push(Entry { profit: it.profit, weight: it.weight, party });
            }
        }
        self.entries.sort_unstable_by(cmp_entry);
        self.rebuild_prefixes();
    }

    /// Incremental [`SortedItems::rebuild`]: `old_items` must be exactly the
    /// slice this view was last built from, and `changed` lists the indices
    /// where `new_items` may differ. The result is bit-identical to
    /// `rebuild(new_items)` at `O(n + k log n)` instead of `O(n log n)`.
    ///
    /// # Panics
    ///
    /// Panics if a changed old entry is not present in the view (the view
    /// was not built from `old_items`).
    pub fn splice(&mut self, old_items: &[Item], new_items: &[Item], changed: &[usize]) {
        debug_assert_eq!(old_items.len(), new_items.len());
        self.splice_rem.clear();
        self.splice_ins.clear();
        for &i in changed {
            let (old, new) = (old_items[i], new_items[i]);
            if old == new {
                continue;
            }
            let party = u32::try_from(i).expect("party count fits u32");
            if old.profit > 0 {
                if old.weight == 0 {
                    self.free -= u128::from(old.profit);
                } else {
                    let e = Entry { profit: old.profit, weight: old.weight, party };
                    let pos = self
                        .entries
                        .binary_search_by(|x| cmp_entry(x, &e))
                        .expect("changed old entry present in view");
                    self.splice_rem.push(pos);
                }
            }
            if new.profit > 0 {
                if new.weight == 0 {
                    self.free += u128::from(new.profit);
                } else {
                    self.splice_ins.push(Entry {
                        profit: new.profit,
                        weight: new.weight,
                        party,
                    });
                }
            }
        }
        self.splice_rem.sort_unstable();
        self.splice_ins.sort_unstable_by(cmp_entry);
        let mut out = std::mem::take(&mut self.scratch);
        out.clear();
        out.reserve(self.entries.len() + self.splice_ins.len());
        let mut rem = self.splice_rem.iter().copied().peekable();
        let mut ins = self.splice_ins.iter().copied().peekable();
        for (idx, &e) in self.entries.iter().enumerate() {
            if rem.peek() == Some(&idx) {
                rem.next();
                continue;
            }
            while ins.peek().is_some_and(|x| cmp_entry(x, &e) == Ordering::Less) {
                out.push(ins.next().expect("peeked"));
            }
            out.push(e);
        }
        out.extend(ins);
        std::mem::swap(&mut self.entries, &mut out);
        self.scratch = out;
        self.rebuild_prefixes();
    }

    fn rebuild_prefixes(&mut self) {
        self.prefix_profit.clear();
        self.prefix_weight.clear();
        self.prefix_profit.push(0);
        self.prefix_weight.push(0);
        let (mut ap, mut aw) = (0u128, 0u128);
        for e in &self.entries {
            ap += u128::from(e.profit);
            aw += u128::from(e.weight);
            self.prefix_profit.push(ap);
            self.prefix_weight.push(aw);
        }
    }

    /// The best profit/weight ratio among positive-weight items, as a
    /// `(profit, weight)` pair — the slope bound certificates need.
    #[must_use]
    pub fn densest(&self) -> Option<(u64, u64)> {
        self.entries.first().map(|e| (e.profit, e.weight))
    }

    /// Number of leading sorted items whose cumulative weight fits within
    /// `capacity` — the Dantzig split point.
    fn cut(&self, capacity: u128) -> usize {
        // prefix_weight is strictly increasing with prefix_weight[0] = 0.
        self.prefix_weight.partition_point(|&w| w <= capacity) - 1
    }

    /// Whether the Dantzig fractional upper bound reaches `target` under
    /// `capacity` (`false` certifies the target unreachable).
    #[must_use]
    pub fn fractional_upper_bound_reaches(&self, capacity: u128, target: u64) -> bool {
        if target == 0 {
            return true;
        }
        if self.free >= u128::from(target) {
            return true;
        }
        let target = u128::from(target) - self.free;
        let cut = self.cut(capacity);
        let acc_profit = self.prefix_profit[cut];
        if acc_profit >= target {
            return true;
        }
        let Some(it) = self.entries.get(cut) else {
            return false; // everything fits and still falls short
        };
        // Fractional part of the breaking item: remaining capacity.
        let rem = capacity - self.prefix_weight[cut];
        // UB reaches target iff acc + profit*rem/w >= target
        //  iff profit*rem >= (target-acc)*w   (exact, widened).
        let need = target - acc_profit;
        cmp_mul(u128::from(it.profit), rem, need, u128::from(it.weight)) != Ordering::Less
    }

    /// Floor of the Dantzig fractional upper bound on the maximum profit
    /// under `capacity`.
    #[must_use]
    pub fn fractional_upper_bound_floor(&self, capacity: u128) -> u128 {
        let cut = self.cut(capacity);
        let acc_profit = self.free + self.prefix_profit[cut];
        let Some(it) = self.entries.get(cut) else {
            return acc_profit;
        };
        let rem = capacity - self.prefix_weight[cut];
        // floor(profit * rem / w); operands fit comfortably via widening.
        let frac =
            crate::wide::mul_div_floor(u128::from(it.profit), rem, u128::from(it.weight))
                .expect("profit * rem fits 256 bits and quotient <= profit");
        acc_profit + frac
    }

    /// Whether the greedy feasible packing (ratio-greedy plus best single
    /// item) reaches `target` under `capacity` (`true` certifies it
    /// reachable).
    #[must_use]
    pub fn greedy_lower_bound_reaches(&self, capacity: u128, target: u64) -> bool {
        self.greedy_witness(capacity, target).is_some()
    }

    /// Like [`SortedItems::greedy_lower_bound_reaches`], but returns the
    /// witness packing `(profit, weight)` — free profit included — when the
    /// target is reached. `Some` exactly when the boolean test is `true`;
    /// the pair is a concrete subset certificates can carry forward.
    #[must_use]
    pub fn greedy_witness(&self, capacity: u128, target: u64) -> Option<(u128, u128)> {
        if u128::from(target) <= self.free {
            return Some((self.free, 0));
        }
        let target = u128::from(target) - self.free;
        let mut acc_profit: u128 = 0;
        let mut acc_weight: u128 = 0;
        for e in &self.entries {
            let w = u128::from(e.weight);
            if acc_weight + w <= capacity {
                acc_weight += w;
                acc_profit += u128::from(e.profit);
                if acc_profit >= target {
                    return Some((self.free + acc_profit, acc_weight));
                }
            }
        }
        // Best single item is another classic feasible witness.
        self.entries
            .iter()
            .find(|e| u128::from(e.weight) <= capacity && u128::from(e.profit) >= target)
            .map(|e| (self.free + u128::from(e.profit), u128::from(e.weight)))
    }

    /// Profit of the greedy feasible packing under `capacity` — a certified
    /// lower bound on the optimum.
    #[must_use]
    pub fn greedy_lower_bound(&self, capacity: u128) -> u128 {
        let mut acc_profit: u128 = 0;
        let mut acc_weight: u128 = 0;
        for e in &self.entries {
            let w = u128::from(e.weight);
            if acc_weight + w <= capacity {
                acc_weight += w;
                acc_profit += u128::from(e.profit);
            }
        }
        let best_single = self
            .entries
            .iter()
            .filter(|e| u128::from(e.weight) <= capacity)
            .map(|e| u128::from(e.profit))
            .max()
            .unwrap_or(0);
        self.free + acc_profit.max(best_single)
    }

    /// The paper's three-valued quasilinear test combining both bounds.
    #[must_use]
    pub fn quick_test(&self, capacity: u128, target: u64) -> QuickOutcome {
        if !self.fractional_upper_bound_reaches(capacity, target) {
            QuickOutcome::CertainlyUnreachable
        } else if self.greedy_lower_bound_reaches(capacity, target) {
            QuickOutcome::CertainlyReachable
        } else {
            QuickOutcome::Uncertain
        }
    }
}

/// Whether the Dantzig fractional (LP-relaxation) upper bound reaches
/// `target` under `capacity`.
///
/// Returns `false` only when **no** subset within capacity can reach
/// `target` (the bound dominates the integral optimum), so `false` certifies
/// validity; `true` is inconclusive.
pub fn fractional_upper_bound_reaches(items: &[Item], capacity: u128, target: u64) -> bool {
    SortedItems::new(items).fractional_upper_bound_reaches(capacity, target)
}

/// Whether a simple feasible packing (ratio-greedy plus the best single
/// item) reaches `target` under `capacity`.
///
/// Returns `true` only when the target is certainly reachable (the packing
/// is itself a witness subset), so `true` certifies invalidity; `false` is
/// inconclusive.
pub fn greedy_lower_bound_reaches(items: &[Item], capacity: u128, target: u64) -> bool {
    SortedItems::new(items).greedy_lower_bound_reaches(capacity, target)
}

/// Floor of the Dantzig fractional (LP-relaxation) upper bound on the
/// maximum profit under `capacity`. Since the integral optimum is an integer
/// no greater than the LP bound, it is no greater than this floor either.
pub fn fractional_upper_bound_floor(items: &[Item], capacity: u128) -> u128 {
    SortedItems::new(items).fractional_upper_bound_floor(capacity)
}

/// Profit of a feasible greedy packing (ratio-greedy, improved by the best
/// single item) under `capacity` — a certified lower bound on the optimum.
pub fn greedy_lower_bound(items: &[Item], capacity: u128) -> u128 {
    SortedItems::new(items).greedy_lower_bound(capacity)
}

/// The paper's three-valued quasilinear test combining both bounds.
pub fn quick_test(items: &[Item], capacity: u128, target: u64) -> QuickOutcome {
    SortedItems::new(items).quick_test(capacity, target)
}

/// Exhaustive reference: maximum profit within capacity over all `2^n`
/// subsets. Only for tests and the tiny-`n` exact solver.
///
/// # Panics
///
/// Panics if `items.len() >= 64`.
pub fn max_profit_brute_force(items: &[Item], capacity: u128) -> u128 {
    assert!(items.len() < 64, "brute force limited to < 64 items");
    let n = items.len();
    let mut best = 0u128;
    for mask in 0u64..(1u64 << n) {
        let mut w: u128 = 0;
        let mut p: u128 = 0;
        for (i, it) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += u128::from(it.weight);
                p += u128::from(it.profit);
            }
        }
        if w <= capacity && p > best {
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(pairs: &[(u64, u64)]) -> Vec<Item> {
        pairs.iter().map(|&(profit, weight)| Item { profit, weight }).collect()
    }

    /// The pre-rework scalar DP, kept verbatim as a differential reference:
    /// no prefilter, no frontier pruning, no chunking.
    fn reference_scalar_dp(items: &[Item], capacity: u128, profit_cap: u64) -> u64 {
        let mut free: u128 = 0;
        let mut rest: Vec<Item> = Vec::new();
        for it in items {
            if it.profit == 0 {
                continue;
            }
            if it.weight == 0 {
                free += u128::from(it.profit);
            } else {
                rest.push(*it);
            }
        }
        let free = free.min(u128::from(profit_cap)) as u64;
        if free >= profit_cap {
            return profit_cap;
        }
        let cap = usize::try_from(profit_cap).expect("profit cap fits usize");
        let mut dp = vec![INF; cap + 1];
        dp[0] = 0;
        let mut best_reach: usize = 0;
        for it in &rest {
            let p = usize::try_from(it.profit).expect("profit fits usize").min(cap);
            let w = u128::from(it.weight);
            let hi = best_reach.min(cap);
            for q in (0..=hi).rev() {
                if dp[q] == INF {
                    continue;
                }
                let np = (q + p).min(cap);
                let nw = dp[q].saturating_add(w);
                if nw < dp[np] {
                    dp[np] = nw;
                    if np > best_reach {
                        best_reach = np;
                    }
                }
            }
        }
        let mut best = 0u64;
        for (p, &w) in dp.iter().enumerate() {
            if w <= capacity {
                best = best.max(p as u64);
            }
        }
        (best + free).min(profit_cap)
    }

    #[test]
    fn dp_simple() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        // capacity 8: best is 5+5 = 10
        assert_eq!(max_profit_dp(&its, 8, 16), 10);
        // capacity 5: best is 6
        assert_eq!(max_profit_dp(&its, 5, 16), 6);
        // capacity 3: nothing fits
        assert_eq!(max_profit_dp(&its, 3, 16), 0);
    }

    #[test]
    fn dp_saturates_at_cap() {
        let its = items(&[(10, 1), (10, 1)]);
        assert_eq!(max_profit_dp(&its, 2, 15), 15);
        assert_eq!(max_profit_dp(&its, 2, 100), 20);
    }

    #[test]
    fn dp_zero_weight_items_are_free() {
        let its = items(&[(3, 0), (4, 10)]);
        assert_eq!(max_profit_dp(&its, 0, 100), 3);
        assert_eq!(max_profit_dp(&its, 10, 100), 7);
    }

    #[test]
    fn dp_probe_frontier_is_exact_and_monotone() {
        let its = items(&[(6, 5), (5, 4), (5, 4), (3, 0)]);
        let mut scratch = DpScratch::default();
        let probe = max_profit_dp_probe(&mut scratch, &its, 8, 100, 1000);
        assert_eq!(probe.best, max_profit_dp(&its, 8, 100));
        // Strictly increasing in both coordinates, starting at the free
        // profit with zero weight.
        assert_eq!(probe.frontier[0], (3, 0));
        for w in probe.frontier.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1, "frontier not monotone: {w:?}");
        }
        // Each frontier weight is the brute-force min weight for its profit.
        for &(q, wmin) in &probe.frontier {
            let feasible = max_profit_brute_force(&its, wmin) >= u128::from(q);
            let below = wmin == 0 || max_profit_brute_force(&its, wmin - 1) < u128::from(q);
            assert!(feasible && below, "({q}, {wmin}) is not a tight frontier point");
        }
    }

    #[test]
    fn chunked_fill_matches_sequential() {
        // Deterministic pseudo-random items, forced through the chunked
        // path, must produce the same frontier as one sequential fill.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let its: Vec<Item> = (0..4000)
            .map(|_| Item { profit: next() % 12 + 1, weight: next() % 90 + 1 })
            .collect();
        let cap = 64usize;
        let prune_limit = 500u128;
        let mut seq = vec![INF; cap + 1];
        seq[0] = 0;
        dp_fill(&mut seq, &its, prune_limit, None);
        for chunks in [2usize, 3, 7] {
            let mut par = vec![INF; cap + 1];
            par[0] = 0;
            dp_chunked(&mut par, &its, prune_limit, chunks);
            assert_eq!(seq, par, "chunked fill diverged at {chunks} chunks");
        }
    }

    /// Deterministic xorshift stream for the bulk class-path tests.
    fn xorshift_stream(mut state: u64) -> impl FnMut() -> u64 {
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn class_dp_matches_sequential_fill() {
        // A bunched instance well above the gate: profits drawn from a
        // small set (plus a saturating whale), weights spread out. The
        // class decomposition must engage and produce the identical
        // frontier-pruned table as one sequential per-item fill.
        let mut next = xorshift_stream(0x9E3779B97F4A7C15);
        let profits = [1u64, 1, 1, 2, 2, 3, 5, 9, 120];
        let mut its: Vec<Item> = (0..6000)
            .map(|_| Item {
                profit: profits[(next() % profits.len() as u64) as usize],
                weight: next() % 900 + 1,
            })
            .collect();
        its.push(Item { profit: 100_000, weight: 333 }); // saturates cap
        let cap = 400usize;
        for (prune_limit, stop_at) in
            [(40_000u128, None), (40_000, Some(9_000u128)), (120_000, None)]
        {
            let mut seq = vec![INF; cap + 1];
            seq[0] = 0;
            dp_fill(&mut seq, &its, prune_limit, stop_at);
            let mut cls = vec![INF; cap + 1];
            cls[0] = 0;
            assert!(
                class_dp(&mut cls, &its, prune_limit, stop_at),
                "bunched instance must take the class path"
            );
            if let Some(budget) = stop_at {
                // Early-exit tables are partial; only the saturated
                // bucket's budget verdict is contractual.
                assert_eq!(
                    seq[cap] <= budget,
                    cls[cap] <= budget,
                    "budget verdict diverged at prune_limit {prune_limit}"
                );
            } else {
                assert_eq!(seq, cls, "tables diverged at prune_limit {prune_limit}");
            }
        }
    }

    #[test]
    fn class_dp_declines_unbunched_input() {
        // All-distinct profits: the class path must decline and leave the
        // table untouched past the reset.
        let its: Vec<Item> =
            (0..5000).map(|i| Item { profit: i + 1, weight: i % 97 + 1 }).collect();
        let mut dp = vec![INF; 301];
        dp[0] = 0;
        assert!(!class_dp(&mut dp, &its, 10_000, None));
        assert!(dp[1..].iter().all(|&w| w == INF));
    }

    #[test]
    fn splice_matches_rebuild() {
        let old = items(&[(5, 4), (0, 7), (3, 0), (9, 2), (5, 4), (1, 9)]);
        let mut new = old.clone();
        new[0] = Item { profit: 2, weight: 2 }; // ratio change
        new[2] = Item { profit: 0, weight: 5 }; // free profit removed
        new[5] = Item { profit: 4, weight: 0 }; // becomes free
        let mut spliced = SortedItems::new(&old);
        spliced.splice(&old, &new, &[0, 2, 5, 4]); // includes an unchanged index
        let rebuilt = SortedItems::new(&new);
        assert_eq!(spliced.free, rebuilt.free);
        assert_eq!(spliced.entries, rebuilt.entries);
        assert_eq!(spliced.prefix_profit, rebuilt.prefix_profit);
        assert_eq!(spliced.prefix_weight, rebuilt.prefix_weight);
    }

    #[test]
    fn greedy_witness_agrees_with_reaches_and_is_feasible() {
        let its = items(&[(6, 5), (5, 4), (5, 4), (2, 0)]);
        let sorted = SortedItems::new(&its);
        for target in 0u64..=20 {
            for cap in [0u128, 3, 8, 13] {
                match sorted.greedy_witness(cap, target) {
                    Some((p, w)) => {
                        assert!(sorted.greedy_lower_bound_reaches(cap, target));
                        assert!(p >= u128::from(target) && w <= cap);
                        assert!(max_profit_brute_force(&its, w) >= p, "witness not real");
                    }
                    None => assert!(!sorted.greedy_lower_bound_reaches(cap, target)),
                }
            }
        }
    }

    #[test]
    fn fractional_bound_dominates() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        // Exact max at capacity 8 is 10; LP bound is >= 10, so target 10 must
        // be "reachable" per the bound.
        assert!(fractional_upper_bound_reaches(&its, 8, 10));
        // target 12: LP bound = 5+5+6*0/...: capacity 8 fills 4+4, frac 0 of
        // item (6,5)? rem=0 -> bound 10 < 12.
        assert!(!fractional_upper_bound_reaches(&its, 8, 12));
    }

    #[test]
    fn greedy_is_feasible_witness() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        assert!(greedy_lower_bound_reaches(&its, 8, 10));
        assert!(!greedy_lower_bound_reaches(&its, 8, 11));
    }

    #[test]
    fn quick_test_three_values() {
        // A classic LP-gap instance: items (2,3),(2,3) capacity 5 target 4.
        // LP bound: 2 + 2*(2/3) = 10/3 >= 4? No -> actually 10/3 < 4, so
        // certainly unreachable.
        let its = items(&[(2, 3), (2, 3)]);
        assert_eq!(quick_test(&its, 5, 4), QuickOutcome::CertainlyUnreachable);
        // target 2: greedy takes one item -> reachable.
        assert_eq!(quick_test(&its, 5, 2), QuickOutcome::CertainlyReachable);
        // Uncertain gap: items (3,4),(3,4),(4,5), capacity 8, target 7.
        // greedy by ratio: (4,5) first (0.8 > 0.75): takes (4,5) w=5, then
        // (3,4) doesn't fit (9>8) -> greedy profit 4; best single 4 < 7.
        // LP: 4 + 3*(3/4) = 6.25 < 7 -> unreachable. Need a true gap case:
        // items (5,5),(4,4),(4,4) cap 8 target 8: LP: ratio 1 all:
        // 4+4=8 -> reaches; greedy 4+4=8 reaches -> CertainlyReachable.
        // Try (5,6),(5,6),(2,6) cap 12 target 10: LP: 5+5=10 reach.
        // greedy: 5+5=10 -> reachable. Hard to be uncertain with few items;
        // construct: (10,10),(9,6),(9,6) cap 12 target 18:
        //   ratios: 1.5,1.5,1.0 -> greedy: 9+9=18 -> reachable.
        // (7,7),(6,5),(6,5) cap 10 target 12: greedy: ratio 1.2: 6+6=12 ok.
        // Make greedy fail: (6,5),(6,5),(7,6) cap 11, target 13:
        //   ratios 1.2,1.2,1.1667: greedy 6+6=12 (w=10), (7,6) no fit; best
        //   single 7. LB says no. LP: 12 + 7*(1/6) = 13.1667 >= 13 -> maybe.
        //   Exact: 6+7=13 (w=11) -> actually reachable!
        let its = items(&[(6, 5), (6, 5), (7, 6)]);
        assert_eq!(quick_test(&its, 11, 13), QuickOutcome::Uncertain);
        assert_eq!(max_profit_dp(&its, 11, 100), 13);
    }

    #[test]
    fn brute_force_reference() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        assert_eq!(max_profit_brute_force(&its, 8), 10);
        assert_eq!(max_profit_brute_force(&its, 13), 16);
        assert_eq!(max_profit_brute_force(&its, 0), 0);
    }

    /// Expands `(profit, weight, selector)` draws into a whale-skewed item
    /// mix: three quarters small parties, one quarter order-of-magnitude
    /// whales.
    fn whale_items(pw: &[(u64, u64, u64)]) -> Vec<Item> {
        pw.iter()
            .map(|&(profit, weight, sel)| Item {
                profit,
                weight: if sel == 0 { 500 + weight * 90 } else { weight },
            })
            .collect()
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..10),
            cap in 0u64..200,
        ) {
            let its = items(&pw);
            let total: u64 = pw.iter().map(|p| p.0).sum();
            let exact = max_profit_brute_force(&its, cap.into());
            let dp = max_profit_dp(&its, cap.into(), total.max(1));
            prop_assert_eq!(u128::from(dp), exact);
        }

        #[test]
        fn dp_matches_brute_force_and_old_scalar_on_whale_mixes(
            pw in proptest::collection::vec((0u64..30, 0u64..50, 0u64..4), 1..24),
            cap in 0u64..8000,
            pcap in 1u64..200,
        ) {
            let its = whale_items(&pw);
            let new = max_profit_dp(&its, cap.into(), pcap);
            let old = reference_scalar_dp(&its, cap.into(), pcap);
            prop_assert_eq!(new, old);
            if its.len() < 20 {
                let exact = max_profit_brute_force(&its, cap.into());
                prop_assert_eq!(u128::from(new), exact.min(u128::from(pcap)));
            }
        }

        #[test]
        fn dp_probe_best_matches_plain_dp(
            pw in proptest::collection::vec((0u64..30, 0u64..50, 0u64..4), 1..24),
            cap in 0u64..8000,
            pcap in 1u64..200,
            slack in 0u128..500,
        ) {
            let its = whale_items(&pw);
            let mut scratch = DpScratch::default();
            let probe = max_profit_dp_probe(&mut scratch, &its, cap.into(), pcap, slack);
            prop_assert_eq!(probe.best, max_profit_dp(&its, cap.into(), pcap));
            // Frontier entries are real subsets (probe-side soundness).
            for &(q, w) in &probe.frontier {
                if its.len() < 20 {
                    prop_assert!(max_profit_brute_force(&its, w) >= u128::from(q));
                }
            }
        }

        #[test]
        fn splice_equals_rebuild_on_random_churn(
            pw in proptest::collection::vec((0u64..30, 0u64..60), 1..24),
            churn in proptest::collection::vec((0usize..24, 0u64..30, 0u64..60), 0..8),
        ) {
            let old = items(&pw);
            let mut new = old.clone();
            let mut changed: Vec<usize> = Vec::new();
            for (i, p, w) in churn {
                let i = i % old.len();
                new[i] = Item { profit: p, weight: w };
                changed.push(i);
            }
            changed.sort_unstable();
            changed.dedup();
            let mut spliced = SortedItems::new(&old);
            spliced.splice(&old, &new, &changed);
            let rebuilt = SortedItems::new(&new);
            prop_assert_eq!(spliced.free, rebuilt.free);
            prop_assert_eq!(spliced.entries, rebuilt.entries);
            prop_assert_eq!(spliced.prefix_weight, rebuilt.prefix_weight);
        }

        #[test]
        fn bounds_sandwich_exact(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..10),
            cap in 0u64..200,
            target in 1u64..100,
        ) {
            let its = items(&pw);
            let exact = max_profit_brute_force(&its, cap.into());
            let reachable = exact >= u128::from(target);
            // Conservative: "unreachable" verdicts are always true verdicts.
            if !fractional_upper_bound_reaches(&its, cap.into(), target) {
                prop_assert!(!reachable);
            }
            // Liberal: "reachable" verdicts are always true verdicts.
            if greedy_lower_bound_reaches(&its, cap.into(), target) {
                prop_assert!(reachable);
            }
            // Quick test never contradicts the truth.
            match quick_test(&its, cap.into(), target) {
                QuickOutcome::CertainlyReachable => prop_assert!(reachable),
                QuickOutcome::CertainlyUnreachable => prop_assert!(!reachable),
                QuickOutcome::Uncertain => {}
            }
        }

        #[test]
        fn dp_profit_cap_is_a_saturation(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..8),
            cap in 0u64..150,
            pcap in 1u64..40,
        ) {
            let its = items(&pw);
            let total: u64 = pw.iter().map(|p| p.0).sum();
            let full = max_profit_dp(&its, cap.into(), total.max(1));
            let capped = max_profit_dp(&its, cap.into(), pcap);
            prop_assert_eq!(capped, full.min(pcap));
        }
    }

    proptest! {
        // Few cases: each drives ~5k items through both the class path and
        // the quadratic scalar reference.
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Class-path pin at full-function granularity: a bunched input
        /// whose prefiltered size clears the gate (profit cap large enough
        /// that the harmonic reduction keeps everything) routes
        /// `max_profit_dp` through the class decomposition; value and
        /// probe frontier must match the pre-rework scalar reference.
        #[test]
        fn class_dp_matches_reference_on_bunched_inputs(
            seed in 1u64..u64::MAX,
            n in 4400usize..5200,
            cap in 1100u64..2600,
            whale_profit in 1u64..4000,
            slack in 0u128..5000,
        ) {
            let mut next = xorshift_stream(seed);
            let profits = [1u64, 1, 2, 3, 7, 31, 150];
            let mut its: Vec<Item> = (0..n)
                .map(|_| Item {
                    profit: profits[(next() % profits.len() as u64) as usize],
                    weight: next() % 500,
                })
                .collect();
            its.push(Item { profit: whale_profit, weight: next() % 500 });
            let capacity = u128::from(next() % 60_000);
            let new = max_profit_dp(&its, capacity, cap);
            let old = reference_scalar_dp(&its, capacity, cap);
            prop_assert_eq!(new, old);
            let mut scratch = DpScratch::default();
            let probe = max_profit_dp_probe(&mut scratch, &its, capacity, cap, slack);
            prop_assert_eq!(probe.best, old);
            for w in probe.frontier.windows(2) {
                prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
            }
        }
    }
}
