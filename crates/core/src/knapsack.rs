//! Knapsack machinery for validating ticket assignments.
//!
//! Verifying a Weight Restriction solution asks: can the adversary pick a
//! subset `S` with `w(S)` below the weight capacity whose tickets `t(S)`
//! reach the ticket threshold? That is a 0/1 knapsack with profits `t_i`
//! and weights `w_i` (paper, Section 3.1 — "verifying a solution ... is
//! equivalent to solving a particular instance of Knapsack").
//!
//! Three evaluators are provided, mirroring the paper's design:
//!
//! * [`max_profit_dp`] — exact "dynamic programming by profits"
//!   (Kellerer–Pferschy–Pisinger, Lemma 2.3.2), `O(n * profit_cap)`.
//! * [`fractional_upper_bound_reaches`] — the Dantzig LP bound, a
//!   *conservative* test: it can claim a reachable target unreachable-not,
//!   i.e. it never claims "safe" when unsafe (no false "valid").
//! * [`greedy_lower_bound_reaches`] — a feasible greedy packing, a *liberal*
//!   test: when greedy reaches the target the target is certainly reachable.
//!
//! Combining the two bounds yields the three-valued [`quick_test`] used by
//! Swiper's full mode to dodge most DP invocations.

use crate::wide::cmp_mul;
use std::cmp::Ordering;

/// Outcome of the quasilinear [`quick_test`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuickOutcome {
    /// The LP bound is below the target: the target is certainly
    /// unreachable (assignment certainly valid).
    CertainlyUnreachable,
    /// A greedy packing reaches the target: certainly reachable
    /// (assignment certainly invalid).
    CertainlyReachable,
    /// The bounds disagree; an exact method must decide.
    Uncertain,
}

/// A knapsack view over parties: profit `t_i` (tickets), weight `w_i`.
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// Profit (tickets of the party).
    pub profit: u64,
    /// Weight of the party.
    pub weight: u64,
}

/// Sorts item indices by profit/weight ratio, descending, with exact
/// cross-multiplied comparisons (no floating point). Zero-weight items must
/// already be removed.
fn sort_by_ratio(items: &mut [Item]) {
    items.sort_by(|a, b| {
        // a.profit/a.weight vs b.profit/b.weight, descending.
        match cmp_mul(
            u128::from(b.profit),
            u128::from(a.weight),
            u128::from(a.profit),
            u128::from(b.weight),
        ) {
            Ordering::Equal => b.profit.cmp(&a.profit), // denser item first
            ord => ord,
        }
    });
}

/// Reusable buffer for [`max_profit_dp_with`]: callers running many DP
/// invocations (the solver's binary search, batch sweeps) keep one scratch
/// alive and avoid reallocating the `O(profit_cap)` table per call.
#[derive(Debug, Default, Clone)]
pub struct DpScratch {
    dp: Vec<u128>,
    rest: Vec<Item>,
}

/// Exact maximum achievable profit, saturated at `profit_cap`, over subsets
/// whose weight is at most `capacity`.
///
/// Dynamic programming by profits: `dp[p]` = minimum weight needed to reach
/// profit at least `p` (profits saturate at `profit_cap`). Runtime
/// `O(n * profit_cap)`, memory `O(profit_cap)`.
///
/// # Panics
///
/// Panics if `profit_cap` does not fit in `usize` (bounded by
/// [`crate::problems::MAX_TICKET_BOUND`] upstream).
pub fn max_profit_dp(items: &[Item], capacity: u128, profit_cap: u64) -> u64 {
    max_profit_dp_with(&mut DpScratch::default(), items, capacity, profit_cap)
}

/// [`max_profit_dp`] reusing a caller-held scratch buffer across calls.
///
/// # Panics
///
/// Panics if `profit_cap` does not fit in `usize`.
pub fn max_profit_dp_with(
    scratch: &mut DpScratch,
    items: &[Item],
    capacity: u128,
    profit_cap: u64,
) -> u64 {
    let mut free: u128 = 0;
    scratch.rest.clear();
    for it in items {
        if it.profit == 0 {
            continue;
        }
        if it.weight == 0 {
            free += u128::from(it.profit);
        } else {
            scratch.rest.push(*it);
        }
    }
    let free = free.min(u128::from(profit_cap)) as u64;
    if free >= profit_cap {
        return profit_cap;
    }
    let cap = usize::try_from(profit_cap).expect("profit cap fits usize");
    // dp[p] = min weight to achieve >= p profit (p saturating at cap).
    const INF: u128 = u128::MAX;
    scratch.dp.clear();
    scratch.dp.resize(cap + 1, INF);
    let dp = &mut scratch.dp[..cap + 1];
    dp[0] = 0;
    let mut best_reach: usize = 0; // highest p with dp[p] finite
    for it in &scratch.rest {
        let p = usize::try_from(it.profit).expect("profit fits usize").min(cap);
        let w = u128::from(it.weight);
        let hi = best_reach.min(cap);
        // Iterate downwards so each item is used at most once.
        for q in (0..=hi).rev() {
            if dp[q] == INF {
                continue;
            }
            let np = (q + p).min(cap);
            let nw = dp[q].saturating_add(w);
            if nw < dp[np] {
                dp[np] = nw;
                if np > best_reach {
                    best_reach = np;
                }
            }
        }
    }
    // Max p with dp[p] <= capacity; dp is not necessarily monotone, so scan.
    let mut best = 0u64;
    for (p, &w) in dp.iter().enumerate() {
        if w <= capacity {
            best = best.max(p as u64);
        }
    }
    (best + free).min(profit_cap)
}

/// A ratio-sorted item view with prefix sums, shared by every bound query
/// against the same candidate assignment.
///
/// The solver's oracle evaluates up to four bound queries per candidate
/// (two capacities × two bounds for Weight Separation); building this once
/// per candidate replaces one sort *per query* with one sort per candidate,
/// and [`SortedItems::rebuild`] recycles the allocations across the whole
/// binary search. Answers are bit-identical to the one-shot free functions
/// below, which delegate here.
#[derive(Debug, Default, Clone)]
pub struct SortedItems {
    /// Profit of zero-weight items: free under any capacity.
    free: u128,
    /// Positive-weight, positive-profit items in descending ratio order.
    items: Vec<Item>,
    /// `prefix_profit[i]` = total profit of `items[..i]`.
    prefix_profit: Vec<u128>,
    /// `prefix_weight[i]` = total weight of `items[..i]` (strictly
    /// increasing: zero weights were split out).
    prefix_weight: Vec<u128>,
}

impl SortedItems {
    /// Builds the sorted view for `items`.
    #[must_use]
    pub fn new(items: &[Item]) -> Self {
        let mut this = SortedItems::default();
        this.rebuild(items);
        this
    }

    /// Rebuilds the view in place for a new candidate, reusing allocations.
    pub fn rebuild(&mut self, items: &[Item]) {
        self.free = 0;
        self.items.clear();
        for it in items {
            if it.profit == 0 {
                continue; // never helps
            }
            if it.weight == 0 {
                self.free += u128::from(it.profit);
            } else {
                self.items.push(*it);
            }
        }
        sort_by_ratio(&mut self.items);
        self.prefix_profit.clear();
        self.prefix_weight.clear();
        self.prefix_profit.push(0);
        self.prefix_weight.push(0);
        let (mut ap, mut aw) = (0u128, 0u128);
        for it in &self.items {
            ap += u128::from(it.profit);
            aw += u128::from(it.weight);
            self.prefix_profit.push(ap);
            self.prefix_weight.push(aw);
        }
    }

    /// Number of leading sorted items whose cumulative weight fits within
    /// `capacity` — the Dantzig split point.
    fn cut(&self, capacity: u128) -> usize {
        // prefix_weight is strictly increasing with prefix_weight[0] = 0.
        self.prefix_weight.partition_point(|&w| w <= capacity) - 1
    }

    /// Whether the Dantzig fractional upper bound reaches `target` under
    /// `capacity` (`false` certifies the target unreachable).
    #[must_use]
    pub fn fractional_upper_bound_reaches(&self, capacity: u128, target: u64) -> bool {
        if target == 0 {
            return true;
        }
        if self.free >= u128::from(target) {
            return true;
        }
        let target = u128::from(target) - self.free;
        let cut = self.cut(capacity);
        let acc_profit = self.prefix_profit[cut];
        if acc_profit >= target {
            return true;
        }
        let Some(it) = self.items.get(cut) else {
            return false; // everything fits and still falls short
        };
        // Fractional part of the breaking item: remaining capacity.
        let rem = capacity - self.prefix_weight[cut];
        // UB reaches target iff acc + profit*rem/w >= target
        //  iff profit*rem >= (target-acc)*w   (exact, widened).
        let need = target - acc_profit;
        cmp_mul(u128::from(it.profit), rem, need, u128::from(it.weight)) != Ordering::Less
    }

    /// Floor of the Dantzig fractional upper bound on the maximum profit
    /// under `capacity`.
    #[must_use]
    pub fn fractional_upper_bound_floor(&self, capacity: u128) -> u128 {
        let cut = self.cut(capacity);
        let acc_profit = self.free + self.prefix_profit[cut];
        let Some(it) = self.items.get(cut) else {
            return acc_profit;
        };
        let rem = capacity - self.prefix_weight[cut];
        // floor(profit * rem / w); operands fit comfortably via widening.
        let frac =
            crate::wide::mul_div_floor(u128::from(it.profit), rem, u128::from(it.weight))
                .expect("profit * rem fits 256 bits and quotient <= profit");
        acc_profit + frac
    }

    /// Whether the greedy feasible packing (ratio-greedy plus best single
    /// item) reaches `target` under `capacity` (`true` certifies it
    /// reachable).
    #[must_use]
    pub fn greedy_lower_bound_reaches(&self, capacity: u128, target: u64) -> bool {
        if target == 0 {
            return true;
        }
        if self.free >= u128::from(target) {
            return true;
        }
        let target = u128::from(target) - self.free;
        let mut acc_profit: u128 = 0;
        let mut acc_weight: u128 = 0;
        for it in &self.items {
            let w = u128::from(it.weight);
            if acc_weight + w <= capacity {
                acc_weight += w;
                acc_profit += u128::from(it.profit);
                if acc_profit >= target {
                    return true;
                }
            }
        }
        // Best single item is another classic feasible witness.
        self.items
            .iter()
            .any(|it| u128::from(it.weight) <= capacity && u128::from(it.profit) >= target)
    }

    /// Profit of the greedy feasible packing under `capacity` — a certified
    /// lower bound on the optimum.
    #[must_use]
    pub fn greedy_lower_bound(&self, capacity: u128) -> u128 {
        let mut acc_profit: u128 = 0;
        let mut acc_weight: u128 = 0;
        for it in &self.items {
            let w = u128::from(it.weight);
            if acc_weight + w <= capacity {
                acc_weight += w;
                acc_profit += u128::from(it.profit);
            }
        }
        let best_single = self
            .items
            .iter()
            .filter(|it| u128::from(it.weight) <= capacity)
            .map(|it| u128::from(it.profit))
            .max()
            .unwrap_or(0);
        self.free + acc_profit.max(best_single)
    }

    /// The paper's three-valued quasilinear test combining both bounds.
    #[must_use]
    pub fn quick_test(&self, capacity: u128, target: u64) -> QuickOutcome {
        if !self.fractional_upper_bound_reaches(capacity, target) {
            QuickOutcome::CertainlyUnreachable
        } else if self.greedy_lower_bound_reaches(capacity, target) {
            QuickOutcome::CertainlyReachable
        } else {
            QuickOutcome::Uncertain
        }
    }
}

/// Whether the Dantzig fractional (LP-relaxation) upper bound reaches
/// `target` under `capacity`.
///
/// Returns `false` only when **no** subset within capacity can reach
/// `target` (the bound dominates the integral optimum), so `false` certifies
/// validity; `true` is inconclusive.
pub fn fractional_upper_bound_reaches(items: &[Item], capacity: u128, target: u64) -> bool {
    SortedItems::new(items).fractional_upper_bound_reaches(capacity, target)
}

/// Whether a simple feasible packing (ratio-greedy plus the best single
/// item) reaches `target` under `capacity`.
///
/// Returns `true` only when the target is certainly reachable (the packing
/// is itself a witness subset), so `true` certifies invalidity; `false` is
/// inconclusive.
pub fn greedy_lower_bound_reaches(items: &[Item], capacity: u128, target: u64) -> bool {
    SortedItems::new(items).greedy_lower_bound_reaches(capacity, target)
}

/// Floor of the Dantzig fractional (LP-relaxation) upper bound on the
/// maximum profit under `capacity`. Since the integral optimum is an integer
/// no greater than the LP bound, it is no greater than this floor either.
pub fn fractional_upper_bound_floor(items: &[Item], capacity: u128) -> u128 {
    SortedItems::new(items).fractional_upper_bound_floor(capacity)
}

/// Profit of a feasible greedy packing (ratio-greedy, improved by the best
/// single item) under `capacity` — a certified lower bound on the optimum.
pub fn greedy_lower_bound(items: &[Item], capacity: u128) -> u128 {
    SortedItems::new(items).greedy_lower_bound(capacity)
}

/// The paper's three-valued quasilinear test combining both bounds.
pub fn quick_test(items: &[Item], capacity: u128, target: u64) -> QuickOutcome {
    SortedItems::new(items).quick_test(capacity, target)
}

/// Exhaustive reference: maximum profit within capacity over all `2^n`
/// subsets. Only for tests and the tiny-`n` exact solver.
///
/// # Panics
///
/// Panics if `items.len() >= 64`.
pub fn max_profit_brute_force(items: &[Item], capacity: u128) -> u128 {
    assert!(items.len() < 64, "brute force limited to < 64 items");
    let n = items.len();
    let mut best = 0u128;
    for mask in 0u64..(1u64 << n) {
        let mut w: u128 = 0;
        let mut p: u128 = 0;
        for (i, it) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += u128::from(it.weight);
                p += u128::from(it.profit);
            }
        }
        if w <= capacity && p > best {
            best = p;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(pairs: &[(u64, u64)]) -> Vec<Item> {
        pairs.iter().map(|&(profit, weight)| Item { profit, weight }).collect()
    }

    #[test]
    fn dp_simple() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        // capacity 8: best is 5+5 = 10
        assert_eq!(max_profit_dp(&its, 8, 16), 10);
        // capacity 5: best is 6
        assert_eq!(max_profit_dp(&its, 5, 16), 6);
        // capacity 3: nothing fits
        assert_eq!(max_profit_dp(&its, 3, 16), 0);
    }

    #[test]
    fn dp_saturates_at_cap() {
        let its = items(&[(10, 1), (10, 1)]);
        assert_eq!(max_profit_dp(&its, 2, 15), 15);
        assert_eq!(max_profit_dp(&its, 2, 100), 20);
    }

    #[test]
    fn dp_zero_weight_items_are_free() {
        let its = items(&[(3, 0), (4, 10)]);
        assert_eq!(max_profit_dp(&its, 0, 100), 3);
        assert_eq!(max_profit_dp(&its, 10, 100), 7);
    }

    #[test]
    fn fractional_bound_dominates() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        // Exact max at capacity 8 is 10; LP bound is >= 10, so target 10 must
        // be "reachable" per the bound.
        assert!(fractional_upper_bound_reaches(&its, 8, 10));
        // target 12: LP bound = 5+5+6*0/...: capacity 8 fills 4+4, frac 0 of
        // item (6,5)? rem=0 -> bound 10 < 12.
        assert!(!fractional_upper_bound_reaches(&its, 8, 12));
    }

    #[test]
    fn greedy_is_feasible_witness() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        assert!(greedy_lower_bound_reaches(&its, 8, 10));
        assert!(!greedy_lower_bound_reaches(&its, 8, 11));
    }

    #[test]
    fn quick_test_three_values() {
        // A classic LP-gap instance: items (2,3),(2,3) capacity 5 target 4.
        // LP bound: 2 + 2*(2/3) = 10/3 >= 4? No -> actually 10/3 < 4, so
        // certainly unreachable.
        let its = items(&[(2, 3), (2, 3)]);
        assert_eq!(quick_test(&its, 5, 4), QuickOutcome::CertainlyUnreachable);
        // target 2: greedy takes one item -> reachable.
        assert_eq!(quick_test(&its, 5, 2), QuickOutcome::CertainlyReachable);
        // Uncertain gap: items (3,4),(3,4),(4,5), capacity 8, target 7.
        // greedy by ratio: (4,5) first (0.8 > 0.75): takes (4,5) w=5, then
        // (3,4) doesn't fit (9>8) -> greedy profit 4; best single 4 < 7.
        // LP: 4 + 3*(3/4) = 6.25 < 7 -> unreachable. Need a true gap case:
        // items (5,5),(4,4),(4,4) cap 8 target 8: LP: ratio 1 all:
        // 4+4=8 -> reaches; greedy 4+4=8 reaches -> CertainlyReachable.
        // Try (5,6),(5,6),(2,6) cap 12 target 10: LP: 5+5=10 reach.
        // greedy: 5+5=10 -> reachable. Hard to be uncertain with few items;
        // construct: (10,10),(9,6),(9,6) cap 12 target 18:
        //   ratios: 1.5,1.5,1.0 -> greedy: 9+9=18 -> reachable.
        // (7,7),(6,5),(6,5) cap 10 target 12: greedy: ratio 1.2: 6+6=12 ok.
        // Make greedy fail: (6,5),(6,5),(7,6) cap 11, target 13:
        //   ratios 1.2,1.2,1.1667: greedy 6+6=12 (w=10), (7,6) no fit; best
        //   single 7. LB says no. LP: 12 + 7*(1/6) = 13.1667 >= 13 -> maybe.
        //   Exact: 6+7=13 (w=11) -> actually reachable!
        let its = items(&[(6, 5), (6, 5), (7, 6)]);
        assert_eq!(quick_test(&its, 11, 13), QuickOutcome::Uncertain);
        assert_eq!(max_profit_dp(&its, 11, 100), 13);
    }

    #[test]
    fn brute_force_reference() {
        let its = items(&[(6, 5), (5, 4), (5, 4)]);
        assert_eq!(max_profit_brute_force(&its, 8), 10);
        assert_eq!(max_profit_brute_force(&its, 13), 16);
        assert_eq!(max_profit_brute_force(&its, 0), 0);
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..10),
            cap in 0u64..200,
        ) {
            let its = items(&pw);
            let total: u64 = pw.iter().map(|p| p.0).sum();
            let exact = max_profit_brute_force(&its, cap.into());
            let dp = max_profit_dp(&its, cap.into(), total.max(1));
            prop_assert_eq!(u128::from(dp), exact);
        }

        #[test]
        fn bounds_sandwich_exact(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..10),
            cap in 0u64..200,
            target in 1u64..100,
        ) {
            let its = items(&pw);
            let exact = max_profit_brute_force(&its, cap.into());
            let reachable = exact >= u128::from(target);
            // Conservative: "unreachable" verdicts are always true verdicts.
            if !fractional_upper_bound_reaches(&its, cap.into(), target) {
                prop_assert!(!reachable);
            }
            // Liberal: "reachable" verdicts are always true verdicts.
            if greedy_lower_bound_reaches(&its, cap.into(), target) {
                prop_assert!(reachable);
            }
            // Quick test never contradicts the truth.
            match quick_test(&its, cap.into(), target) {
                QuickOutcome::CertainlyReachable => prop_assert!(reachable),
                QuickOutcome::CertainlyUnreachable => prop_assert!(!reachable),
                QuickOutcome::Uncertain => {}
            }
        }

        #[test]
        fn dp_profit_cap_is_a_saturation(
            pw in proptest::collection::vec((0u64..30, 0u64..50), 1..8),
            cap in 0u64..150,
            pcap in 1u64..40,
        ) {
            let its = items(&pw);
            let total: u64 = pw.iter().map(|p| p.0).sum();
            let full = max_profit_dp(&its, cap.into(), total.max(1));
            let capped = max_profit_dp(&its, cap.into(), pcap);
            prop_assert_eq!(capped, full.min(pcap));
        }
    }
}
