//! Exact validity checking of ticket assignments against the weight
//! reduction problem definitions (Section 2).
//!
//! A Weight Restriction assignment is *viable* iff `T != 0` and every subset
//! `S` with `w(S) < alpha_w * W` has `t(S) < alpha_n * T`. Deciding this is
//! a knapsack instance (Section 3.1); these functions build the instance
//! exactly (integer weights, rational thresholds) and delegate to
//! [`crate::knapsack`].

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::knapsack::{self, Item};
use crate::problems::{WeightQualification, WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::weights::Weights;
use crate::wide::cmp_mul;

fn ceil_div(a: u128, b: u128) -> u128 {
    a / b + u128::from(!a.is_multiple_of(b))
}

/// Largest integer subset-weight strictly below `threshold * W`, i.e. the
/// knapsack capacity `floor((p*W - 1) / q)` for `threshold = p/q`.
pub(crate) fn strict_capacity(threshold: Ratio, total_weight: u128) -> Result<u128, CoreError> {
    let pw = threshold.num().checked_mul(total_weight).ok_or(CoreError::ArithmeticOverflow)?;
    // threshold > 0 and W > 0 imply pw >= 1.
    Ok((pw - 1) / threshold.den())
}

/// Smallest integer ticket count `k` with `k >= threshold * T`
/// (`ceil(p*T / q)` for `threshold = p/q`).
pub(crate) fn ticket_target(threshold: Ratio, total_tickets: u128) -> Result<u128, CoreError> {
    let pt = threshold.num().checked_mul(total_tickets).ok_or(CoreError::ArithmeticOverflow)?;
    Ok(ceil_div(pt, threshold.den()))
}

fn items_of(weights: &Weights, tickets: &TicketAssignment) -> Vec<Item> {
    weights
        .as_slice()
        .iter()
        .zip(tickets.as_slice())
        .map(|(&weight, &profit)| Item { profit, weight })
        .collect()
}

/// Exactly decides whether `tickets` is a valid Weight Restriction solution
/// for `weights` under `params` (Problem 1). Runs the DP knapsack, so the
/// cost is `O(n * T)`.
///
/// # Errors
///
/// [`CoreError::ArithmeticOverflow`] when the inputs exceed the supported
/// envelope.
pub fn verify_restriction(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightRestriction,
) -> Result<bool, CoreError> {
    assert_eq!(weights.len(), tickets.len(), "weights/tickets length mismatch");
    let total = tickets.total();
    if total == 0 {
        return Ok(false); // viability requires T != 0
    }
    let capacity = strict_capacity(params.alpha_w(), weights.total())?;
    let target = ticket_target(params.alpha_n(), total)?;
    if target > total {
        return Ok(true); // unreachable by any subset
    }
    let target = u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?;
    let items = items_of(weights, tickets);
    let reached = knapsack::max_profit_dp(&items, capacity, target) >= target;
    Ok(!reached)
}

/// Exactly decides Weight Qualification validity (Problem 2) via the
/// Theorem 2.2 reduction `WQ(bw, bn) = WR(1-bw, 1-bn)`.
///
/// # Errors
///
/// See [`verify_restriction`].
pub fn verify_qualification(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightQualification,
) -> Result<bool, CoreError> {
    verify_restriction(weights, tickets, &params.to_restriction())
}

/// Exactly decides Weight Separation validity (Problem 3):
/// `max{t(S1) : w(S1) < alpha W} < min{t(S2) : w(S2) > beta W}`, where the
/// right side equals `T - max{t(S) : w(S) < (1-beta) W}` by complementation.
///
/// # Errors
///
/// See [`verify_restriction`].
pub fn verify_separation(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightSeparation,
) -> Result<bool, CoreError> {
    assert_eq!(weights.len(), tickets.len(), "weights/tickets length mismatch");
    let total = tickets.total();
    if total == 0 {
        return Ok(false);
    }
    let total_u64 = u64::try_from(total).map_err(|_| CoreError::ArithmeticOverflow)?;
    let items = items_of(weights, tickets);
    let cap_low = strict_capacity(params.alpha(), weights.total())?;
    let cap_high = strict_capacity(params.beta().one_minus()?, weights.total())?;
    let a = u128::from(knapsack::max_profit_dp(&items, cap_low, total_u64));
    let b = u128::from(knapsack::max_profit_dp(&items, cap_high, total_u64));
    // valid  <=>  a < total - b  <=>  a + b < total.
    Ok(a + b < total)
}

/// Brute-force Weight Restriction check over all `2^n` subsets — the literal
/// Problem 1 statement. Reference for tests and the tiny-`n` exact solver.
///
/// # Panics
///
/// Panics if `weights.len() >= 25` (exponential blowup guard).
pub fn verify_restriction_exhaustive(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightRestriction,
) -> bool {
    let n = weights.len();
    assert!(n < 25, "exhaustive verification limited to n < 25");
    let total = tickets.total();
    if total == 0 {
        return false;
    }
    let (aw, an) = (params.alpha_w(), params.alpha_n());
    let big_w = weights.total();
    for mask in 0u32..(1u32 << n) {
        let mut w: u128 = 0;
        let mut t: u128 = 0;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                w += u128::from(weights.get(i));
                t += u128::from(tickets.get(i));
            }
        }
        // w < aw*W  <=>  w*qw < pw*W ; violated when also t >= an*T.
        let under_weight = cmp_mul(w, aw.den(), aw.num(), big_w) == std::cmp::Ordering::Less;
        let over_tickets = cmp_mul(t, an.den(), an.num(), total) != std::cmp::Ordering::Less;
        if under_weight && over_tickets {
            return false;
        }
    }
    true
}

/// Brute-force Weight Qualification check, directly from Problem 2 (not via
/// the reduction — used to validate Theorem 2.2 in tests).
///
/// # Panics
///
/// Panics if `weights.len() >= 25`.
pub fn verify_qualification_exhaustive(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightQualification,
) -> bool {
    let n = weights.len();
    assert!(n < 25, "exhaustive verification limited to n < 25");
    let total = tickets.total();
    if total == 0 {
        return false;
    }
    let (bw, bn) = (params.beta_w(), params.beta_n());
    let big_w = weights.total();
    for mask in 0u32..(1u32 << n) {
        let mut w: u128 = 0;
        let mut t: u128 = 0;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                w += u128::from(weights.get(i));
                t += u128::from(tickets.get(i));
            }
        }
        let over_weight = cmp_mul(w, bw.den(), bw.num(), big_w) == std::cmp::Ordering::Greater;
        let under_tickets =
            cmp_mul(t, bn.den(), bn.num(), total) != std::cmp::Ordering::Greater;
        if over_weight && under_tickets {
            return false;
        }
    }
    true
}

/// Brute-force Weight Separation check over all subset pairs (via the two
/// extremal subsets rather than literally `4^n` pairs).
///
/// # Panics
///
/// Panics if `weights.len() >= 25`.
pub fn verify_separation_exhaustive(
    weights: &Weights,
    tickets: &TicketAssignment,
    params: &WeightSeparation,
) -> bool {
    let n = weights.len();
    assert!(n < 25, "exhaustive verification limited to n < 25");
    let total = tickets.total();
    if total == 0 {
        return false;
    }
    let big_w = weights.total();
    let (alpha, beta) = (params.alpha(), params.beta());
    // max tickets over light sets; min tickets over heavy sets.
    let mut max_light: Option<u128> = None;
    let mut min_heavy: Option<u128> = None;
    for mask in 0u32..(1u32 << n) {
        let mut w: u128 = 0;
        let mut t: u128 = 0;
        for i in 0..n {
            if mask >> i & 1 == 1 {
                w += u128::from(weights.get(i));
                t += u128::from(tickets.get(i));
            }
        }
        if cmp_mul(w, alpha.den(), alpha.num(), big_w) == std::cmp::Ordering::Less {
            max_light = Some(max_light.map_or(t, |m| m.max(t)));
        }
        if cmp_mul(w, beta.den(), beta.num(), big_w) == std::cmp::Ordering::Greater {
            min_heavy = Some(min_heavy.map_or(t, |m| m.min(t)));
        }
    }
    match (max_light, min_heavy) {
        (Some(a), Some(b)) => a < b,
        // No heavy set (beta*W unreachable) or no light set: vacuously true.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn weights(ws: &[u64]) -> Weights {
        Weights::new(ws.to_vec()).unwrap()
    }

    #[test]
    fn capacity_is_strictly_below_threshold() {
        // W = 9, threshold 1/3: subsets of weight < 3, so capacity 2.
        assert_eq!(strict_capacity(Ratio::of(1, 3), 9).unwrap(), 2);
        // W = 10, threshold 1/2: capacity 4 (weight 5 is NOT < 5).
        assert_eq!(strict_capacity(Ratio::of(1, 2), 10).unwrap(), 4);
        // W = 7, threshold 1/2: 3.5 -> capacity 3.
        assert_eq!(strict_capacity(Ratio::of(1, 2), 7).unwrap(), 3);
    }

    #[test]
    fn target_is_ceiling() {
        // T = 9, threshold 1/3: t(S) >= 3 violates.
        assert_eq!(ticket_target(Ratio::of(1, 3), 9).unwrap(), 3);
        // T = 10, threshold 1/3: 10/3 -> 4.
        assert_eq!(ticket_target(Ratio::of(1, 3), 10).unwrap(), 4);
    }

    #[test]
    fn zero_total_is_invalid() {
        let w = weights(&[1, 2, 3]);
        let t = TicketAssignment::new(vec![0, 0, 0]);
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!(!verify_restriction(&w, &t, &wr).unwrap());
        assert!(!verify_restriction_exhaustive(&w, &t, &wr));
    }

    #[test]
    fn proportional_assignment_is_valid() {
        // Tickets exactly proportional to weights can only shift rounding by
        // 0, so a generous gap validates.
        let w = weights(&[10, 20, 30, 40]);
        let t = TicketAssignment::new(vec![1, 2, 3, 4]);
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!(verify_restriction(&w, &t, &wr).unwrap());
    }

    #[test]
    fn overweighting_a_small_party_is_invalid() {
        // Party 0 holds 1% of weight but 60% of tickets.
        let w = weights(&[1, 99]);
        let t = TicketAssignment::new(vec![6, 4]);
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!(!verify_restriction(&w, &t, &wr).unwrap());
        assert!(!verify_restriction_exhaustive(&w, &t, &wr));
    }

    #[test]
    fn qualification_reduction_agrees_with_direct() {
        let w = weights(&[5, 1, 1, 1]);
        let wq = WeightQualification::new(Ratio::of(2, 3), Ratio::of(1, 2)).unwrap();
        for t in [vec![4u64, 1, 1, 1], vec![1, 1, 1, 1], vec![8, 0, 0, 0], vec![2, 2, 2, 2]] {
            let t = TicketAssignment::new(t);
            assert_eq!(
                verify_qualification(&w, &t, &wq).unwrap(),
                verify_qualification_exhaustive(&w, &t, &wq),
                "assignment {:?}",
                t.as_slice()
            );
        }
    }

    #[test]
    fn separation_valid_and_invalid() {
        let w = weights(&[40, 30, 20, 10]);
        let ws = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
        // Proportional tickets with enough total separate well.
        let good = TicketAssignment::new(vec![8, 6, 4, 2]);
        assert!(verify_separation(&w, &good, &ws).unwrap());
        assert!(verify_separation_exhaustive(&w, &good, &ws));
        // All tickets to the lightest party: a light set can out-ticket a
        // heavy set.
        let bad = TicketAssignment::new(vec![0, 0, 0, 5]);
        assert!(!verify_separation(&w, &bad, &ws).unwrap());
        assert!(!verify_separation_exhaustive(&w, &bad, &ws));
    }

    #[test]
    fn single_party_always_valid_with_ticket() {
        let w = weights(&[7]);
        let t = TicketAssignment::new(vec![1]);
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!(verify_restriction(&w, &t, &wr).unwrap());
        assert!(verify_restriction_exhaustive(&w, &t, &wr));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn dp_verifier_matches_exhaustive_wr(
            pairs in proptest::collection::vec((0u64..20, 0u64..30), 1..9),
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let (ws, ts): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
            prop_assume!(ws.iter().any(|&w| w > 0));
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            let w = Weights::new(ws).unwrap();
            let t = TicketAssignment::new(ts);
            let wr = WeightRestriction::new(aw, an).unwrap();
            prop_assert_eq!(
                verify_restriction(&w, &t, &wr).unwrap(),
                verify_restriction_exhaustive(&w, &t, &wr)
            );
        }

        #[test]
        fn dp_verifier_matches_exhaustive_ws(
            pairs in proptest::collection::vec((0u64..20, 0u64..20), 1..9),
            pa in 1u128..5, pb in 2u128..6,
        ) {
            let (ws_v, ts): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
            prop_assume!(ws_v.iter().any(|&w| w > 0));
            let alpha = Ratio::of(pa, 6);
            let beta = Ratio::of(pb, 6);
            prop_assume!(alpha < beta && alpha.is_proper() && beta.is_proper());
            let w = Weights::new(ws_v).unwrap();
            let t = TicketAssignment::new(ts);
            let ws = WeightSeparation::new(alpha, beta).unwrap();
            prop_assert_eq!(
                verify_separation(&w, &t, &ws).unwrap(),
                verify_separation_exhaustive(&w, &t, &ws)
            );
        }

        #[test]
        fn theorem_2_2_reduction_equivalence(
            pairs in proptest::collection::vec((0u64..20, 0u64..20), 1..9),
            pw in 2u128..6, pn in 1u128..5,
        ) {
            let (ws, ts): (Vec<u64>, Vec<u64>) = pairs.into_iter().unzip();
            prop_assume!(ws.iter().any(|&w| w > 0));
            let bw = Ratio::of(pw, 6);
            let bn = Ratio::of(pn, 6);
            prop_assume!(bn < bw && bw.is_proper() && bn.is_proper());
            let w = Weights::new(ws).unwrap();
            let t = TicketAssignment::new(ts);
            let wq = WeightQualification::new(bw, bn).unwrap();
            // Reduction-based == direct exhaustive WQ.
            prop_assert_eq!(
                verify_qualification(&w, &t, &wq).unwrap(),
                verify_qualification_exhaustive(&w, &t, &wq)
            );
        }
    }
}
