//! The Swiper ticket-assignment family `t(s, k)` (paper, Section 3.1).
//!
//! For a fixed rounding constant `c` in `(0, 1)`, the family consists of
//! assignments `t_i = floor(s * w_i + c)` for a scale `s >= 0`, refined by
//! taking one ticket away from all but `k` of the parties "on the border"
//! (those for which `s * w_i + c` is an integer). Ordered by total tickets,
//! consecutive members differ by exactly one ticket, so the family is
//! totally ordered and indexable by its total `T`.
//!
//! This module computes the member with a given total **exactly**: the scale
//! at which the `T`-th ticket appears is the `T`-th smallest *crossing*
//! `(m - c) / w_i` over parties `i` and positive integers `m`. Selection is
//! done with pure integer arithmetic:
//!
//! 1. binary-search the integer `j` such that the `T`-th crossing lies in
//!    `((j-1-c)/w_max, (j-c)/w_max]` — an interval of length `1/w_max` that
//!    contains at most one crossing per party, because crossings of party
//!    `i` are spaced `1/w_i >= 1/w_max` apart;
//! 2. enumerate the at-most-`n` crossings inside and select by rank.
//!
//! All comparisons cross-multiply `u128`s (with 256-bit widening where
//! needed), mirroring the exact-`Fraction` discipline of the reference
//! implementation.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::ratio::Ratio;
use crate::weights::Weights;
use crate::wide::cmp_mul;

/// A crossing value `(m - c) / w = a / (cd * w)` with `a = m * cd - cn`.
#[derive(Debug, Clone, Copy)]
struct Crossing {
    /// Numerator over the denominator `cd * w`.
    a: u128,
    /// The party whose crossing this is.
    party: usize,
    /// That party's weight (denominator component).
    w: u64,
}

impl Crossing {
    fn cmp_value(&self, other: &Crossing) -> Ordering {
        // a1/(cd*w1) vs a2/(cd*w2)  <=>  a1*w2 vs a2*w1
        cmp_mul(self.a, u128::from(other.w), other.a, u128::from(self.w))
    }
}

/// See [`Family::eval_at`]. `Narrow` is exact because the constructor
/// proves `a * w_max + add <= u64::MAX` and every `w_i <= w_max`.
enum TicketsEval {
    Narrow { a: u64, add: u64, den: u64 },
    Wide { a: u128, add: u128, den: u128 },
}

impl TicketsEval {
    #[inline]
    fn tickets(&self, w_i: u64) -> u128 {
        match *self {
            TicketsEval::Narrow { a, add, den } => u128::from((a * w_i + add) / den),
            TicketsEval::Wide { a, add, den } => (a * u128::from(w_i) + add) / den,
        }
    }
}

/// The `t(s, k)` family for a weight vector and rounding constant.
#[derive(Debug)]
pub(crate) struct Family<'a> {
    weights: &'a Weights,
    /// `c = cn / cd`, strictly inside `(0, 1)`.
    cn: u128,
    cd: u128,
    w_max: u64,
}

impl<'a> Family<'a> {
    /// Creates the family, pre-validating that all intermediate products for
    /// totals up to `max_total` fit in `u128`.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ThresholdOutOfRange`] when `c` is not in `(0, 1)`.
    /// * [`CoreError::ArithmeticOverflow`] when `max_total`, `c`'s
    ///   denominator and the largest weight jointly exceed the envelope.
    pub fn new(weights: &'a Weights, c: Ratio, max_total: u64) -> Result<Self, CoreError> {
        if !c.is_proper() {
            return Err(CoreError::ThresholdOutOfRange {
                what: "family constant c must be in (0, 1)",
            });
        }
        let (cn, cd) = (c.num(), c.den());
        let w_max = weights.max();
        // Worst-case numerator: ((max_total + 2) * cd) * w_max + cn * w_max.
        let a_max = u128::from(max_total)
            .checked_add(2)
            .and_then(|x| x.checked_mul(cd))
            .ok_or(CoreError::ArithmeticOverflow)?;
        a_max
            .checked_mul(u128::from(w_max))
            .and_then(|x| x.checked_add(cn.checked_mul(u128::from(w_max))?))
            .ok_or(CoreError::ArithmeticOverflow)?;
        Ok(Family { weights, cn, cd, w_max })
    }

    /// Hoisted evaluator for `floor(s * w_i + c)` at a fixed scale
    /// `s = a / (cd * w_p)`, i.e. `floor((a*w_i + cn*w_p) / (cd*w_p))`: the
    /// addend `cn * w_p` and denominator `cd * w_p` are per-scale constants,
    /// and when `a * w_max + add` provably fits in `u64` the whole
    /// evaluation runs at native width (`u128` division lowers to a
    /// libcall an order of magnitude slower — this is the inner loop of
    /// every binary-search probe, O(n) per probe at n up to 10⁶).
    fn eval_at(&self, a: u128, w_p: u64) -> TicketsEval {
        let add = self.cn * u128::from(w_p);
        let den = self.cd * u128::from(w_p);
        let w_max = u128::from(self.w_max.max(1));
        let narrow = (|| {
            let den64 = u64::try_from(den).ok()?;
            let add64 = u64::try_from(add).ok()?;
            let a64 = u64::try_from(a).ok()?;
            if a > (u128::MAX - add) / w_max || a * w_max + add > u128::from(u64::MAX) {
                return None;
            }
            Some(TicketsEval::Narrow { a: a64, add: add64, den: den64 })
        })();
        narrow.unwrap_or(TicketsEval::Wide { a, add, den })
    }

    /// Total tickets of the base assignment at scale `s = a / (cd * w_p)`,
    /// i.e. the number of crossings with value `<= s`.
    fn count_at(&self, a: u128, w_p: u64) -> u128 {
        let eval = self.eval_at(a, w_p);
        self.weights.as_slice().iter().map(|&w| if w == 0 { 0 } else { eval.tickets(w) }).sum()
    }

    /// Numerator `a = j * cd - cn` of the scale `(j - c) / w_max`.
    fn grid_a(&self, j: u64) -> u128 {
        u128::from(j) * self.cd - self.cn
    }

    /// The unique family member with exactly `total` tickets.
    ///
    /// For `total == 0` this is the all-zero assignment (the `s -> 0`
    /// limit), which is never *viable* but is useful to the solver as the
    /// invalid end of its binary search.
    pub fn assignment_with_total(&self, total: u64) -> Result<TicketAssignment, CoreError> {
        let n = self.weights.len();
        if total == 0 {
            return Ok(TicketAssignment::new(vec![0; n]));
        }
        // Step 1: find minimal j in [1, total] with count((j - c)/w_max) >= total.
        // At j = total the max-weight party alone contributes `total`.
        let (mut lo, mut hi) = (0u64, total); // lo: count < total (j=0 -> s<0 -> 0)
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.count_at(self.grid_a(mid), self.w_max) >= u128::from(total) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let j = hi;
        let count_left = if j == 1 { 0 } else { self.count_at(self.grid_a(j - 1), self.w_max) };
        debug_assert!(count_left < u128::from(total));
        let rank = (u128::from(total) - count_left) as usize; // 1-based within interval

        // Step 2: one candidate crossing per party inside ((j-1-c)/w_max, (j-c)/w_max].
        let r_a = self.grid_a(j);
        let left_eval = (j > 1).then(|| self.eval_at(self.grid_a(j - 1), self.w_max));
        let mut cands: Vec<Crossing> = Vec::new();
        for (i, w) in self.weights.iter() {
            if w == 0 {
                continue;
            }
            // First crossing index strictly after the left end.
            let m = match &left_eval {
                None => 1,
                Some(eval) => eval.tickets(w) + 1,
            };
            let a = m * self.cd - self.cn;
            // Include iff value <= right end: a/(cd*w) <= r_a/(cd*w_max)
            //   <=> a * w_max <= r_a * w.
            if cmp_mul(a, u128::from(self.w_max), r_a, u128::from(w)) != Ordering::Greater {
                cands.push(Crossing { a, party: i, w });
            }
        }
        debug_assert!(cands.len() >= rank, "interval must contain the target crossing");
        cands.sort_by(|x, y| x.cmp_value(y).then(x.party.cmp(&y.party)));
        let star = cands[rank - 1];

        // Step 3: base assignment at s* and the border set.
        let mut tickets: Vec<u64> = Vec::with_capacity(n);
        let mut total_base: u128 = 0;
        let star_eval = self.eval_at(star.a, star.w);
        for (_, w) in self.weights.iter() {
            let t = if w == 0 { 0 } else { star_eval.tickets(w) };
            total_base += t;
            tickets.push(u64::try_from(t).map_err(|_| CoreError::ArithmeticOverflow)?);
        }
        let overshoot = usize::try_from(total_base - u128::from(total))
            .map_err(|_| CoreError::ArithmeticOverflow)?;
        if overshoot > 0 {
            // Border parties: candidates whose crossing value equals s*.
            let mut border: Vec<&Crossing> =
                cands.iter().filter(|c| c.cmp_value(&star) == Ordering::Equal).collect();
            debug_assert!(border.len() > overshoot, "overshoot bounded by border size");
            // Deterministic "all but k" rule: drop tickets from the lightest
            // border parties first, breaking ties towards higher indices.
            border.sort_by(|x, y| x.w.cmp(&y.w).then(y.party.cmp(&x.party)));
            for c in border.into_iter().take(overshoot) {
                tickets[c.party] -= 1;
            }
        }
        let out = TicketAssignment::new(tickets);
        debug_assert_eq!(out.total(), u128::from(total));
        Ok(out)
    }
}

/// Party count above which the cursor's O(n) interval build fans out over
/// chunked worker threads (same gate shape as the knapsack kernel).
const CURSOR_PAR_MIN_PARTIES: usize = 8192;

/// Cached state of one grid interval `((j-1-c)/w_max, (j-c)/w_max]`: the
/// sorted candidate crossings inside it and the ticket vector materialized
/// somewhere along it. Any total whose boundary crossing falls in the same
/// interval is reachable from here by splicing only the candidates between
/// the two ranks — the O(Δ) path.
struct IntervalState {
    j: u64,
    /// Candidate crossings in the interval, sorted by `(value, party)`.
    cands: Vec<Crossing>,
    /// `cands[..applied]` currently carry their `+1` in the ticket vector.
    applied: usize,
    /// Parties currently holding a border `-1` (the "all but k" drop).
    dropped: Vec<usize>,
}

/// Incremental materializer over one [`Family`]: [`FamilyCursor::advance_to`]
/// produces the member with a given total **bit-identically** to
/// [`Family::assignment_with_total`], but shares work across calls.
///
/// Two memoizations carry between probes of one binary search:
///
/// 1. **Grid counts** — `count(j)` evaluations (the O(n) inner loop of the
///    grid search) are memoized per `j`, and each search pre-narrows its
///    bracket from the memo before computing anything new; across a whole
///    solve the count work approaches one cold search's instead of one per
///    probe.
/// 2. **Interval state** — when consecutive totals land in the same grid
///    interval (the common case once a bracket tightens), the ticket vector
///    is spliced by rank delta: only parties whose crossing sits between
///    the two boundary ranks change, plus border-drop bookkeeping.
///
/// Equivalence with the from-scratch path is pinned by the
/// `cursor_matches_from_scratch` proptest below.
pub(crate) struct FamilyCursor<'f, 'a> {
    family: &'f Family<'a>,
    /// Memoized `j -> count_at(grid_a(j), w_max)`.
    grid_counts: BTreeMap<u64, u128>,
    interval: Option<IntervalState>,
    /// Current ticket vector for the cached interval (valid when
    /// `interval.is_some()`).
    tickets: Vec<u64>,
    /// Advances served from the cached interval via rank-delta splicing.
    reused: u64,
}

impl<'f, 'a> FamilyCursor<'f, 'a> {
    pub fn new(family: &'f Family<'a>) -> Self {
        FamilyCursor {
            family,
            grid_counts: BTreeMap::new(),
            interval: None,
            tickets: Vec::new(),
            reused: 0,
        }
    }

    /// Advances served by the O(Δ) same-interval splice so far.
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Memoized `count_at(grid_a(j), w_max)`.
    fn count(&mut self, j: u64) -> u128 {
        if let Some(&c) = self.grid_counts.get(&j) {
            return c;
        }
        let c = self.family.count_at(self.family.grid_a(j), self.family.w_max);
        self.grid_counts.insert(j, c);
        c
    }

    /// Minimal `j` in `[1, total]` with `count(j) >= total` — same value the
    /// from-scratch grid search finds, reached through the memo: counts are
    /// monotone in `j`, so every memoized entry narrows the bracket before
    /// any new O(n) count runs.
    fn find_j(&mut self, total: u64) -> u64 {
        let want = u128::from(total);
        let mut lo = 0u64; // count(lo) < total (j=0 -> s<0 -> count 0)
        let mut hi = total; // count(total) >= total (w_max alone reaches it)
        for (&j, &c) in &self.grid_counts {
            if j >= hi {
                break;
            }
            if c < want {
                lo = lo.max(j);
            } else {
                hi = hi.min(j);
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.count(mid) >= want {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// The family member with exactly `total` tickets; see
    /// [`Family::assignment_with_total`] for the semantics — outputs are
    /// bit-identical, including the deterministic border rule.
    pub fn advance_to(&mut self, total: u64) -> Result<TicketAssignment, CoreError> {
        let family = self.family;
        let n = family.weights.len();
        if total == 0 {
            return Ok(TicketAssignment::new(vec![0; n]));
        }
        let j = self.find_j(total);
        let count_left = if j == 1 { 0 } else { self.count(j - 1) };
        debug_assert!(count_left < u128::from(total));
        let rank = (u128::from(total) - count_left) as usize;

        let same_interval = self.interval.as_ref().is_some_and(|iv| iv.j == j);
        if same_interval {
            self.reused += 1;
        } else {
            self.build_interval(j);
        }
        let iv = self.interval.as_mut().expect("interval built above");
        debug_assert!(iv.cands.len() >= rank, "interval must contain the target crossing");
        let star = iv.cands[rank - 1];

        // Border block: candidates sharing the star's value are contiguous
        // in the (value, party) sort.
        let mut lb = rank - 1;
        while lb > 0 && iv.cands[lb - 1].cmp_value(&star) == Ordering::Equal {
            lb -= 1;
        }
        let mut ub = rank;
        while ub < iv.cands.len() && iv.cands[ub].cmp_value(&star) == Ordering::Equal {
            ub += 1;
        }

        // Undo the previous total's border drops, splice the base by rank
        // delta, then apply this total's drops: O(Δ + border).
        for &p in &iv.dropped {
            self.tickets[p] += 1;
        }
        iv.dropped.clear();
        if ub > iv.applied {
            for c in &iv.cands[iv.applied..ub] {
                self.tickets[c.party] += 1;
            }
        } else {
            for c in &iv.cands[ub..iv.applied] {
                self.tickets[c.party] -= 1;
            }
        }
        iv.applied = ub;

        let overshoot = ub - rank;
        if overshoot > 0 {
            let mut border: Vec<&Crossing> = iv.cands[lb..ub].iter().collect();
            debug_assert!(border.len() > overshoot, "overshoot bounded by border size");
            border.sort_by(|x, y| x.w.cmp(&y.w).then(y.party.cmp(&x.party)));
            for c in border.into_iter().take(overshoot) {
                self.tickets[c.party] -= 1;
                iv.dropped.push(c.party);
            }
        }
        Ok(TicketAssignment::from_parts(self.tickets.clone(), u128::from(total)))
    }

    /// Materializes the interval `j`: left-boundary tickets for every party
    /// plus the sorted in-interval candidates. Both scans are O(n) and
    /// independent per party, so large vectors fan out over chunked worker
    /// threads exactly like the knapsack DP blocks; chunk results are
    /// stitched back in party order, so the outcome is bit-identical to the
    /// sequential scan.
    fn build_interval(&mut self, j: u64) {
        let family = self.family;
        let n = family.weights.len();
        let left_eval = (j > 1).then(|| family.eval_at(family.grid_a(j - 1), family.w_max));
        let r_a = family.grid_a(j);
        self.tickets.clear();
        self.tickets.resize(n, 0);

        let weights = family.weights.as_slice();
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
        let mut cands: Vec<Crossing>;
        if n >= CURSOR_PAR_MIN_PARTIES && workers > 1 {
            let chunk = n.div_ceil(workers);
            let mut parts: Vec<Vec<Crossing>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = weights
                    .chunks(chunk)
                    .zip(self.tickets.chunks_mut(chunk))
                    .enumerate()
                    .map(|(k, (ws, ts))| {
                        let left_eval = &left_eval;
                        scope.spawn(move || {
                            scan_block(family, ws, ts, k * chunk, left_eval, r_a)
                        })
                    })
                    .collect();
                parts = handles.into_iter().map(|h| h.join().expect("scan worker")).collect();
            });
            cands = parts.concat();
        } else {
            cands = scan_block(family, weights, &mut self.tickets, 0, &left_eval, r_a);
        }
        cands.sort_by(|x, y| x.cmp_value(y).then(x.party.cmp(&y.party)));
        self.interval = Some(IntervalState { j, cands, applied: 0, dropped: Vec::new() });
    }
}

/// One chunk of the interval build: writes each party's left-boundary
/// tickets into `tickets` and returns the chunk's candidate crossings
/// (parties whose next crossing falls inside the interval), in party order.
fn scan_block(
    family: &Family<'_>,
    weights: &[u64],
    tickets: &mut [u64],
    base: usize,
    left_eval: &Option<TicketsEval>,
    r_a: u128,
) -> Vec<Crossing> {
    let mut cands = Vec::new();
    for (off, (&w, t)) in weights.iter().zip(tickets.iter_mut()).enumerate() {
        if w == 0 {
            *t = 0;
            continue;
        }
        let left = match left_eval {
            None => 0,
            Some(eval) => eval.tickets(w),
        };
        *t = u64::try_from(left).expect("validated by Family::new envelope");
        let m = left + 1;
        let a = m * family.cd - family.cn;
        if cmp_mul(a, u128::from(family.w_max), r_a, u128::from(w)) != Ordering::Greater {
            cands.push(Crossing { a, party: base + off, w });
        }
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn family_assignments(ws: &[u64], c: Ratio, up_to: u64) -> Vec<Vec<u64>> {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let fam = Family::new(&weights, c, up_to).unwrap();
        (0..=up_to).map(|t| fam.assignment_with_total(t).unwrap().into_inner()).collect()
    }

    #[test]
    fn single_party_gets_all_tickets() {
        let weights = Weights::new(vec![42]).unwrap();
        let fam = Family::new(&weights, Ratio::of(1, 3), 10).unwrap();
        for t in 0..=10u64 {
            let a = fam.assignment_with_total(t).unwrap();
            assert_eq!(a.as_slice(), &[t]);
        }
    }

    #[test]
    fn equal_weights_round_robin_totals() {
        // Three equal parties: totals distribute as evenly as the family
        // allows; every total is hit exactly.
        let all = family_assignments(&[5, 5, 5], Ratio::of(1, 3), 9);
        for (t, a) in all.iter().enumerate() {
            assert_eq!(a.iter().sum::<u64>(), t as u64);
            let max = *a.iter().max().unwrap();
            let min = *a.iter().min().unwrap();
            assert!(max - min <= 1, "equal weights must stay balanced: {a:?}");
        }
    }

    #[test]
    fn proportionality_for_skewed_weights() {
        // Weight 90 vs 10: at total 10 the big party holds roughly 9 tickets.
        let weights = Weights::new(vec![90, 10]).unwrap();
        let fam = Family::new(&weights, Ratio::of(1, 2), 20).unwrap();
        let a = fam.assignment_with_total(10).unwrap();
        assert_eq!(a.total(), 10);
        assert!(a.get(0) >= 8, "big party should dominate: {:?}", a.as_slice());
    }

    #[test]
    fn zero_weight_parties_never_get_tickets() {
        let weights = Weights::new(vec![0, 7, 0, 3]).unwrap();
        let fam = Family::new(&weights, Ratio::of(1, 4), 12).unwrap();
        for t in 0..=12u64 {
            let a = fam.assignment_with_total(t).unwrap();
            assert_eq!(a.get(0), 0);
            assert_eq!(a.get(2), 0);
            assert_eq!(a.total(), u128::from(t));
        }
    }

    #[test]
    fn consecutive_totals_differ_by_one_ticket() {
        // The family is totally ordered: member T+1 dominates member T
        // pointwise and adds exactly one ticket.
        let all = family_assignments(&[13, 7, 29, 1, 50], Ratio::of(2, 5), 40);
        for t in 1..all.len() {
            let (prev, cur) = (&all[t - 1], &all[t]);
            let mut diff_total = 0i64;
            for i in 0..prev.len() {
                assert!(
                    cur[i] + 1 >= prev[i],
                    "party {i} lost more than one ticket between T={} and T={t}",
                    t - 1
                );
                diff_total += cur[i] as i64 - prev[i] as i64;
            }
            assert_eq!(diff_total, 1);
        }
    }

    #[test]
    fn invalid_constant_rejected() {
        let weights = Weights::new(vec![1, 2]).unwrap();
        assert!(Family::new(&weights, Ratio::ONE, 10).is_err());
        assert!(Family::new(&weights, Ratio::ZERO, 10).is_err());
    }

    #[test]
    fn huge_weights_stay_exact() {
        // Weights near u64::MAX with a modest total must not overflow and
        // must remain proportional.
        let weights = Weights::new(vec![u64::MAX, u64::MAX / 2]).unwrap();
        let fam = Family::new(&weights, Ratio::of(1, 3), 30).unwrap();
        let a = fam.assignment_with_total(30).unwrap();
        assert_eq!(a.total(), 30);
        // Proportions ~ 2:1.
        assert!(a.get(0) >= 19 && a.get(0) <= 21, "{:?}", a.as_slice());
    }

    #[test]
    fn matches_naive_scale_sweep() {
        // Reference: brute-force the crossing multiset with exact fractions
        // over small weights and compare the induced assignment.
        let ws = [3u64, 5, 2];
        let c = Ratio::of(1, 3);
        let weights = Weights::new(ws.to_vec()).unwrap();
        let fam = Family::new(&weights, c, 15).unwrap();
        // Enumerate crossings (m - c)/w as exact fractions, sorted.
        let mut crossings: Vec<(u128, u128, usize)> = Vec::new(); // (num, den, party)
        for (i, &w) in ws.iter().enumerate() {
            for m in 1u128..=20 {
                crossings.push((m * 3 - 1, 3 * u128::from(w), i));
            }
        }
        crossings.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)).then(a.2.cmp(&b.2)));
        for total in 1u64..=15 {
            let got = fam.assignment_with_total(total).unwrap();
            // Naive: count per party among the first `total` crossings,
            // resolving value-ties with the same deterministic rule (drop
            // from lightest weight, then highest index).
            let boundary = &crossings[usize::try_from(total).unwrap() - 1];
            let mut naive = vec![0u64; ws.len()];
            for c in &crossings {
                let cmp = (c.0 * boundary.1).cmp(&(boundary.0 * c.1));
                if cmp == Ordering::Less {
                    naive[c.2] += 1;
                }
            }
            let base: u64 = naive.iter().sum();
            let mut border: Vec<usize> = crossings
                .iter()
                .filter(|c| (c.0 * boundary.1) == (boundary.0 * c.1))
                .map(|c| c.2)
                .collect();
            // keep = total - base tickets go to border parties by rule:
            // heaviest weight first, lower index first.
            border.sort_by(|&x, &y| ws[y].cmp(&ws[x]).then(x.cmp(&y)));
            for &p in border.iter().take(usize::try_from(total - base).unwrap()) {
                naive[p] += 1;
            }
            assert_eq!(got.as_slice(), naive.as_slice(), "total={total}");
        }
    }

    #[test]
    fn cursor_matches_from_scratch_on_fixed_vectors() {
        let weights = Weights::new(vec![13, 7, 29, 1, 50, 50, 3]).unwrap();
        let fam = Family::new(&weights, Ratio::of(2, 5), 60).unwrap();
        let mut cursor = FamilyCursor::new(&fam);
        // A bisection-shaped probe order: far jumps, then a tight cluster.
        for t in [30u64, 15, 45, 52, 48, 50, 49, 0, 49, 1, 60] {
            let inc = cursor.advance_to(t).unwrap();
            let scratch = fam.assignment_with_total(t).unwrap();
            assert_eq!(inc, scratch, "total={t}");
        }
        assert!(cursor.reused() > 0, "clustered probes must hit the splice path");
    }

    proptest! {
        /// Satellite pin: the cursor's spliced advance is bit-identical to
        /// the from-scratch materialization, under random weight vectors,
        /// random probe orders, and epoch churn (fresh weights -> fresh
        /// family -> fresh cursor, as the solver rebuilds per epoch).
        #[test]
        fn cursor_matches_from_scratch(
            ws in proptest::collection::vec(0u64..1_000_000, 1..24),
            mut churned in proptest::collection::vec(0u64..1_000_000, 1..24),
            probes in proptest::collection::vec(0u64..80, 1..12),
            cn in 1u128..20,
        ) {
            prop_assume!(ws.iter().any(|&w| w > 0));
            let c = Ratio::of(cn, 20);
            prop_assume!(c.is_proper());
            // Epoch churn delta: perturb a prefix of the old vector.
            for (dst, &src) in churned.iter_mut().zip(&ws) {
                *dst = (*dst).wrapping_add(src) % 1_000_000;
            }
            prop_assume!(churned.iter().any(|&w| w > 0));
            for vec in [ws, churned] {
                let weights = Weights::new(vec).unwrap();
                let fam = Family::new(&weights, c, 80).unwrap();
                let mut cursor = FamilyCursor::new(&fam);
                for &t in &probes {
                    let inc = cursor.advance_to(t).unwrap();
                    let scratch = fam.assignment_with_total(t).unwrap();
                    prop_assert_eq!(inc, scratch, "total={}", t);
                }
            }
        }

        #[test]
        fn totals_always_exact(
            ws in proptest::collection::vec(0u64..1_000_000, 1..20),
            total in 0u64..100,
            cn in 1u128..20,
        ) {
            prop_assume!(ws.iter().any(|&w| w > 0));
            let weights = Weights::new(ws).unwrap();
            let c = Ratio::of(cn, 20);
            prop_assume!(c.is_proper());
            let fam = Family::new(&weights, c, 100).unwrap();
            let a = fam.assignment_with_total(total).unwrap();
            prop_assert_eq!(a.total(), u128::from(total));
        }

        #[test]
        fn monotone_in_total(
            ws in proptest::collection::vec(1u64..10_000, 2..12),
            c_num in 1u128..8,
        ) {
            let weights = Weights::new(ws).unwrap();
            let c = Ratio::of(c_num, 8);
            prop_assume!(c.is_proper());
            let fam = Family::new(&weights, c, 40).unwrap();
            let mut prev = fam.assignment_with_total(0).unwrap();
            for t in 1..=40u64 {
                let cur = fam.assignment_with_total(t).unwrap();
                let gained: i128 = cur
                    .as_slice()
                    .iter()
                    .zip(prev.as_slice())
                    .map(|(&c, &p)| i128::from(c) - i128::from(p))
                    .sum();
                prop_assert_eq!(gained, 1);
                prev = cur;
            }
        }
    }
}
