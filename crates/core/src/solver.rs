//! The Swiper approximate solver (paper, Section 3).
//!
//! Swiper searches the totally-ordered `t(s, k)` family for a *local
//! minimum*: a viable assignment whose predecessor (one fewer ticket) is not
//! viable. Appendix A proves every such local minimum respects the
//! Theorem 2.1/2.3/2.4 upper bounds, and that the family member carrying
//! exactly the upper-bound total is always viable ("bootstrapping"), so a
//! binary search between the invalid all-zero member and the bound member
//! suffices.
//!
//! Validity judgement is delegated to a pluggable [`ValidityOracle`]
//! (see [`crate::oracle`]); one generic binary-search driver serves all
//! three problem shapes. Two stock oracles mirror the prototype:
//!
//! * [`Mode::Full`] → [`FullOracle`] — exact validity via the three-valued
//!   quick test (quasilinear bounds) with the `O(n*T)` knapsack DP only on
//!   "uncertain"; finds a local minimum.
//! * [`Mode::Linear`] → [`LinearOracle`] — only the conservative bound
//!   (never falsely accepts); guaranteed valid but possibly not locally
//!   minimal, `~O(n)` per check.
//!
//! Batch workloads (parameter sweeps, per-epoch re-solves over many chains)
//! go through [`Swiper::solve_many`], which fans instances out across OS
//! threads — weight reduction instances are embarrassingly parallel — via a
//! work-stealing index cursor (so one oversized instance never serializes a
//! whole chunk behind it), while each worker recycles one oracle's memoized
//! scratch across every instance it claims.

use serde::{Deserialize, Serialize};

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::family::{Family, FamilyCursor};
use crate::oracle::{
    CheckParams, FamilyMember, FullOracle, LinearOracle, ValidityOracle, Verdict,
};
use crate::problems::{WeightQualification, WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::sampling;
use crate::weights::Weights;

/// Validity-checking regime (the prototype's `--linear` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Mode {
    /// Quick test + exact DP on uncertainty; local minimum guaranteed.
    #[default]
    Full,
    /// Conservative bound only; valid but possibly more tickets.
    Linear,
}

impl Mode {
    /// A fresh boxed oracle implementing this regime.
    #[must_use]
    pub fn new_oracle(self) -> Box<dyn ValidityOracle + Send> {
        match self {
            Mode::Full => Box::new(FullOracle::new()),
            Mode::Linear => Box::new(LinearOracle::new()),
        }
    }
}

/// Counters describing how a solve went; useful for the paper's ">3x fewer
/// DP calls" claim and for regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Family members materialized and checked.
    pub candidates_checked: u64,
    /// Checks settled by the conservative (fractional upper) bound.
    pub settled_by_upper_bound: u64,
    /// Checks settled by the liberal (greedy lower) bound.
    pub settled_by_lower_bound: u64,
    /// Checks that needed the exact DP.
    pub dp_invocations: u64,
    /// Checks settled by the theoretical bound itself (bootstrapping).
    pub settled_by_theorem: u64,
    /// Checks answered from a [`crate::CachingOracle`] verdict cache.
    pub cache_hits: u64,
    /// Checks that went through to the wrapped oracle (zero when no
    /// caching decorator is in play).
    pub cache_misses: u64,
    /// Checks settled by replaying a delta-stable verdict certificate
    /// (see [`crate::oracle`]) instead of re-running bounds or the DP.
    /// Counted separately from cache hits: the member differed from the
    /// one that produced the stored verdict.
    pub certificate_skips: u64,
    /// Probes served by the incremental family cursor's O(Δ) same-interval
    /// splice instead of a from-scratch materialization (zero on small
    /// instances, where the solver keeps the legacy per-probe path).
    pub cursor_advances: u64,
    /// Bisection midpoints settled by the sampler's trust window (assumed
    /// verdicts that survived endpoint re-verification) instead of exact
    /// probes — zero when the sampler is not engaged or its estimate was
    /// refuted and the search fell back to the untrusted bisection.
    pub probes_saved: u64,
    /// Checks settled by a certificate found through the coarse quantized
    /// total index — the stored total differed from the probed one, but the
    /// replayed margin still covered it. Disjoint from `certificate_skips`,
    /// which counts exact-total matches.
    pub coarse_cert_hits: u64,
}

impl SolveStats {
    /// Adds `other`'s counters into `self` — the aggregation primitive for
    /// sweeps and epoch replays.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.candidates_checked += other.candidates_checked;
        self.settled_by_upper_bound += other.settled_by_upper_bound;
        self.settled_by_lower_bound += other.settled_by_lower_bound;
        self.dp_invocations += other.dp_invocations;
        self.settled_by_theorem += other.settled_by_theorem;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.certificate_skips += other.certificate_skips;
        self.cursor_advances += other.cursor_advances;
        self.probes_saved += other.probes_saved;
        self.coarse_cert_hits += other.coarse_cert_hits;
    }

    /// Cache lookups observed (`hits + misses`).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Fraction of cache lookups answered from the cache (`0.0` when no
    /// caching oracle was involved).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_lookups();
        if lookups == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / lookups as f64
    }
}

/// A solved weight reduction instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// The ticket assignment found.
    pub assignment: TicketAssignment,
    /// The theoretical upper bound for this instance (Theorems 2.1/2.3/2.4).
    pub ticket_bound: u64,
    /// Solve-time counters.
    pub stats: SolveStats,
}

impl Solution {
    /// Total tickets allocated.
    pub fn total_tickets(&self) -> u128 {
        self.assignment.total()
    }
}

/// One weight reduction instance for batch solving via
/// [`Swiper::solve_many`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instance {
    /// A Weight Restriction (Problem 1) instance.
    Restriction {
        /// Party weights.
        weights: Weights,
        /// Problem parameters.
        params: WeightRestriction,
    },
    /// A Weight Qualification (Problem 2) instance, solved through the
    /// Theorem 2.2 reduction.
    Qualification {
        /// Party weights.
        weights: Weights,
        /// Problem parameters.
        params: WeightQualification,
    },
    /// A Weight Separation (Problem 3) instance.
    Separation {
        /// Party weights.
        weights: Weights,
        /// Problem parameters.
        params: WeightSeparation,
    },
}

impl Instance {
    /// A Weight Restriction instance.
    #[must_use]
    pub fn restriction(weights: Weights, params: WeightRestriction) -> Self {
        Instance::Restriction { weights, params }
    }

    /// A Weight Qualification instance.
    #[must_use]
    pub fn qualification(weights: Weights, params: WeightQualification) -> Self {
        Instance::Qualification { weights, params }
    }

    /// A Weight Separation instance.
    #[must_use]
    pub fn separation(weights: Weights, params: WeightSeparation) -> Self {
        Instance::Separation { weights, params }
    }

    /// The instance's weight vector.
    #[must_use]
    pub fn weights(&self) -> &Weights {
        match self {
            Instance::Restriction { weights, .. }
            | Instance::Qualification { weights, .. }
            | Instance::Separation { weights, .. } => weights,
        }
    }
}

/// The solver. Construct with [`Swiper::new`] (full mode) or
/// [`Swiper::with_mode`].
///
/// # Examples
///
/// ```
/// use swiper_core::{Ratio, Swiper, Weights, WeightRestriction};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let weights = Weights::new(vec![100, 50, 20, 10, 5, 5, 5, 5])?;
/// let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// let solution = Swiper::new().solve_restriction(&weights, &params)?;
/// assert!(solution.total_tickets() <= u128::from(solution.ticket_bound));
/// assert!(swiper_core::verify_restriction(
///     &weights, &solution.assignment, &params)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Swiper {
    mode: Mode,
    tuning: Tuning,
}

/// Size gates for the probe-pipeline accelerators. Small instances keep the
/// legacy per-probe path bit-identically (stats included — the seed-cascade
/// equivalence proptests pin that); large instances route probes through
/// the incremental [`FamilyCursor`] and, when no warm hint exists, overlay
/// the weighted sampler's trust window on the bisection. Tests lower the
/// gates through
/// [`Swiper::with_tuning`] to exercise the accelerated paths at small `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Tuning {
    /// Parties at or above which probes share one incremental cursor.
    pub incremental_min_parties: usize,
    /// Parties at or above which a hintless solve consults the sampler.
    pub sampling_min_parties: usize,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning { incremental_min_parties: 4096, sampling_min_parties: 1 << 18 }
    }
}

impl Swiper {
    /// Full-mode solver.
    pub fn new() -> Self {
        Swiper { mode: Mode::Full, tuning: Tuning::default() }
    }

    /// Solver with an explicit mode.
    pub fn with_mode(mode: Mode) -> Self {
        Swiper { mode, tuning: Tuning::default() }
    }

    /// Solver with explicit accelerator gates — test plumbing for the
    /// cursor/sampler equivalence suites.
    #[cfg(test)]
    pub(crate) fn with_tuning(mode: Mode, tuning: Tuning) -> Self {
        Swiper { mode, tuning }
    }

    /// The active mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Solves Weight Restriction (Problem 1).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_restriction(
        &self,
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Solution, CoreError> {
        self.solve_restriction_with(&mut *self.mode.new_oracle(), weights, params)
    }

    /// [`Swiper::solve_restriction`] driving a caller-supplied oracle —
    /// the plug point for custom checking regimes (cached verdicts,
    /// incremental re-solve, instrumentation).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_restriction_with<O: ValidityOracle + ?Sized>(
        &self,
        oracle: &mut O,
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Solution, CoreError> {
        solve_restriction_hinted(oracle, weights, params, None, self.tuning)
    }

    /// Returns the `t(s, k)` family member with exactly `total` tickets
    /// for a Weight Restriction instance — **without** checking validity.
    ///
    /// Members with `total >= params.ticket_bound(n)` are valid by
    /// Theorem 2.1. Larger members are closer to proportional
    /// (`t_i ~ s * w_i`), which the fairness extension
    /// ([`crate::fairness`]) exploits: a near-proportional base keeps the
    /// rebalancing lottery small.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn restriction_family_member(
        &self,
        weights: &Weights,
        params: &WeightRestriction,
        total: u64,
    ) -> Result<TicketAssignment, CoreError> {
        let family = Family::new(weights, params.family_constant(), total)?;
        family.assignment_with_total(total)
    }

    /// Solves Weight Qualification (Problem 2) through the Theorem 2.2
    /// reduction; the returned assignment satisfies the WQ property (and the
    /// equivalent WR property).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_qualification(
        &self,
        weights: &Weights,
        params: &WeightQualification,
    ) -> Result<Solution, CoreError> {
        self.solve_restriction(weights, &params.to_restriction())
    }

    /// [`Swiper::solve_qualification`] driving a caller-supplied oracle.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_qualification_with<O: ValidityOracle + ?Sized>(
        &self,
        oracle: &mut O,
        weights: &Weights,
        params: &WeightQualification,
    ) -> Result<Solution, CoreError> {
        self.solve_restriction_with(oracle, weights, &params.to_restriction())
    }

    /// Solves Weight Separation (Problem 3).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_separation(
        &self,
        weights: &Weights,
        params: &WeightSeparation,
    ) -> Result<Solution, CoreError> {
        self.solve_separation_with(&mut *self.mode.new_oracle(), weights, params)
    }

    /// [`Swiper::solve_separation`] driving a caller-supplied oracle.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_separation_with<O: ValidityOracle + ?Sized>(
        &self,
        oracle: &mut O,
        weights: &Weights,
        params: &WeightSeparation,
    ) -> Result<Solution, CoreError> {
        solve_separation_hinted(oracle, weights, params, None, self.tuning)
    }

    /// Solves one batch [`Instance`] with this solver's mode.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_instance(&self, instance: &Instance) -> Result<Solution, CoreError> {
        self.solve_instance_with(&mut *self.mode.new_oracle(), instance)
    }

    /// [`Swiper::solve_instance`] driving a caller-supplied oracle.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_instance_with<O: ValidityOracle + ?Sized>(
        &self,
        oracle: &mut O,
        instance: &Instance,
    ) -> Result<Solution, CoreError> {
        match instance {
            Instance::Restriction { weights, params } => {
                self.solve_restriction_with(oracle, weights, params)
            }
            Instance::Qualification { weights, params } => {
                self.solve_qualification_with(oracle, weights, params)
            }
            Instance::Separation { weights, params } => {
                self.solve_separation_with(oracle, weights, params)
            }
        }
    }

    /// Solves a batch of independent instances, in parallel across OS
    /// threads, returning solutions in input order.
    ///
    /// Weight reduction instances share nothing, so the batch fans out
    /// over a **work-stealing cursor**: workers claim the next unsolved
    /// index from a shared atomic counter, so one huge instance (a
    /// Filecoin-sized separation, say) occupies a single worker while the
    /// rest drain the remaining batch — no long-tail imbalance from
    /// contiguous chunking. Each worker drives its own oracle, whose
    /// memoized scratch (sorted prefix sums, DP table) is recycled across
    /// every instance that worker claims. Oracle scratch never changes
    /// answers (only cost), so results — solutions *and* per-solve stats —
    /// are deterministic, in input order, and identical to solving each
    /// instance alone sequentially.
    ///
    /// # Errors
    ///
    /// Returns the first error in instance order; remaining solutions are
    /// discarded.
    pub fn solve_many(&self, instances: &[Instance]) -> Result<Vec<Solution>, CoreError> {
        let n = instances.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
        let mut slots: Vec<Option<Result<Solution, CoreError>>> = vec![None; n];
        if workers <= 1 {
            let oracle = &mut *self.mode.new_oracle();
            for (inst, slot) in instances.iter().zip(slots.iter_mut()) {
                *slot = Some(self.solve_instance_with(oracle, inst));
            }
        } else {
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            // One uncontended mutex per slot: each index is claimed by
            // exactly one worker through the cursor, so locks never block;
            // they only let the borrow checker hand out disjoint slots.
            let locked: Vec<std::sync::Mutex<&mut Option<Result<Solution, CoreError>>>> =
                slots.iter_mut().map(std::sync::Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let (solver, cursor, locked) = (*self, &cursor, &locked);
                    scope.spawn(move || {
                        let oracle = &mut *solver.mode.new_oracle();
                        loop {
                            let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(inst) = instances.get(i) else { break };
                            let solved = solver.solve_instance_with(oracle, inst);
                            **locked[i].lock().expect("slot lock never poisoned") =
                                Some(solved);
                        }
                    });
                }
            });
        }
        slots.into_iter().map(|slot| slot.expect("every slot solved")).collect()
    }

    /// Re-solves `instance` seeding the binary search from a previous
    /// epoch's solution instead of the cold `[0, bound]` bracket.
    ///
    /// Per-epoch weight deltas touch few parties, so the new answer is
    /// almost always within a few tickets of the old total: the warm
    /// search probes the old total, gallops outward until the bracket's
    /// invariants (`lo` invalid, `hi` valid) are re-established, and only
    /// then bisects. When the hint is useless — zero, or at/beyond the new
    /// bound — the search degrades to exactly the cold path, bit-identical
    /// stats included.
    ///
    /// # Guarantees
    ///
    /// The result carries the same guarantees as a cold solve: a *valid*
    /// family member (oracle soundness), total at most the theoretical
    /// bound, locally minimal for exact oracles, and fully deterministic —
    /// every replica warm-starting from the same history derives the same
    /// tickets. When the validity predicate flips once between the two
    /// search ranges (the overwhelmingly common case on real stake
    /// distributions) the warm result is **identical** to the cold solve.
    /// The predicate is not monotone in general, though: isolated *dips*
    /// (a valid member just below an invalid one — e.g. validity pattern
    /// `V.VVV` near the flip) mean the family can hold several local
    /// minima, and a warm bracket may settle on a neighbouring one where
    /// cold bisection lands on another. Epoch loops that must stay
    /// bit-identical to cold re-solves run
    /// `swiper_weights::epoch::Reconfigurator::with_cold_check`, which
    /// re-derives each epoch cold through the shared verdict cache and
    /// publishes that result.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn resolve_from(
        &self,
        prev: &Solution,
        instance: &Instance,
    ) -> Result<Solution, CoreError> {
        self.resolve_from_with(&mut *self.mode.new_oracle(), prev, instance)
    }

    /// [`Swiper::resolve_from`] driving a caller-supplied oracle — pair it
    /// with a [`crate::CachingOracle`] to also reuse verdicts across
    /// epochs.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn resolve_from_with<O: ValidityOracle + ?Sized>(
        &self,
        oracle: &mut O,
        prev: &Solution,
        instance: &Instance,
    ) -> Result<Solution, CoreError> {
        let warm = u64::try_from(prev.total_tickets()).ok();
        match instance {
            Instance::Restriction { weights, params } => {
                solve_restriction_hinted(oracle, weights, params, warm, self.tuning)
            }
            Instance::Qualification { weights, params } => solve_restriction_hinted(
                oracle,
                weights,
                &params.to_restriction(),
                warm,
                self.tuning,
            ),
            Instance::Separation { weights, params } => {
                solve_separation_hinted(oracle, weights, params, warm, self.tuning)
            }
        }
    }

    /// The epoch-batch companion of [`Swiper::solve_many`]: solves
    /// `instances[i]` warm-started from `priors[i]` (cold when `None`)
    /// driving the caller's persistent `oracles[i]`, in parallel across OS
    /// threads with deterministic, input-order results.
    ///
    /// Unlike [`Swiper::solve_many`] the oracles outlive the call, so
    /// [`crate::CachingOracle`] state accumulates across epochs; each
    /// instance keeps a dedicated oracle, which keeps the fan-out lock-free
    /// and the per-track caches disjoint.
    ///
    /// # Panics
    ///
    /// Panics when `instances`, `priors` and `oracles` have different
    /// lengths — a structural misuse, not a data error.
    ///
    /// # Errors
    ///
    /// Returns the first error in instance order; remaining solutions are
    /// discarded.
    pub fn resolve_many_with<O: ValidityOracle + Send>(
        &self,
        instances: &[Instance],
        priors: &[Option<Solution>],
        oracles: &mut [O],
    ) -> Result<Vec<Solution>, CoreError> {
        assert_eq!(instances.len(), priors.len(), "one prior slot per instance");
        assert_eq!(instances.len(), oracles.len(), "one oracle per instance");
        let n = instances.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let solve_one = |solver: &Swiper,
                         oracle: &mut O,
                         inst: &Instance,
                         prior: &Option<Solution>| match prior {
            Some(prev) => solver.resolve_from_with(oracle, prev, inst),
            None => solver.solve_instance_with(oracle, inst),
        };
        let workers = std::thread::available_parallelism().map_or(1, |p| p.get()).min(n);
        let mut slots: Vec<Option<Result<Solution, CoreError>>> = vec![None; n];
        if workers <= 1 {
            for (((inst, prior), oracle), slot) in
                instances.iter().zip(priors).zip(oracles.iter_mut()).zip(slots.iter_mut())
            {
                *slot = Some(solve_one(self, oracle, inst, prior));
            }
        } else {
            // Work-stealing over a shared cursor, same shape as
            // [`Swiper::solve_many`]; here each index additionally owns a
            // dedicated persistent oracle, so the per-index mutex bundles
            // the oracle with its result slot (claimed exactly once, so
            // the locks never contend).
            type WorkItem<'a, O> = (&'a mut O, &'a mut Option<Result<Solution, CoreError>>);
            let cursor = std::sync::atomic::AtomicUsize::new(0);
            let locked: Vec<std::sync::Mutex<WorkItem<'_, O>>> =
                oracles.iter_mut().zip(slots.iter_mut()).map(std::sync::Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let (solver, cursor, locked) = (*self, &cursor, &locked);
                    scope.spawn(move || loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(inst) = instances.get(i) else { break };
                        let mut cell = locked[i].lock().expect("slot lock never poisoned");
                        let (oracle, slot) = &mut *cell;
                        **slot = Some(solve_one(&solver, oracle, inst, &priors[i]));
                    });
                }
            });
        }
        slots.into_iter().map(|slot| slot.expect("every slot solved")).collect()
    }
}

/// Restriction-shaped solve (also serves Weight Qualification through the
/// Theorem 2.2 reduction): bound + check-parameter setup shared by the
/// cold entry points (`warm = None`) and [`Swiper::resolve_from_with`].
fn solve_restriction_hinted<O: ValidityOracle + ?Sized>(
    oracle: &mut O,
    weights: &Weights,
    params: &WeightRestriction,
    warm: Option<u64>,
    tuning: Tuning,
) -> Result<Solution, CoreError> {
    let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
    let bound = params.ticket_bound(n)?.max(1);
    let check = CheckParams::restriction(weights, params)?;
    solve_with(oracle, weights, params.family_constant(), bound, &check, warm, tuning)
}

/// Separation-shaped solve; see [`solve_restriction_hinted`].
fn solve_separation_hinted<O: ValidityOracle + ?Sized>(
    oracle: &mut O,
    weights: &Weights,
    params: &WeightSeparation,
    warm: Option<u64>,
    tuning: Tuning,
) -> Result<Solution, CoreError> {
    let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
    let bound = params.ticket_bound(n)?.max(1);
    let check = CheckParams::separation(weights, params)?;
    solve_with(oracle, weights, params.family_constant(), bound, &check, warm, tuning)
}

/// The generic binary-search driver: finds the least family member the
/// oracle accepts, between the (invalid) all-zero member and the
/// theoretical-bound member (valid by bootstrapping).
///
/// With a `warm` hint (a previous epoch's total), the driver first probes
/// the hint and gallops outward with doubling steps until it brackets a
/// validity flip, then bisects inside that bracket. The `lo`-invalid /
/// `hi`-valid invariants hold throughout, so the warm result is a valid
/// local minimum exactly like the cold one; when the predicate flips only
/// once between the two search ranges the results coincide (see
/// [`Swiper::resolve_from`] for the non-monotone caveat). A hint of `0`,
/// or at/beyond the bound, is ignored (cold path).
///
/// The driver owns the search-shaped counters (`candidates_checked`,
/// `settled_by_theorem`); oracles only report how checks were settled. The
/// oracle is drained even when the search aborts with an error, so a
/// reused oracle never leaks one solve's counters into the next.
fn solve_with<O: ValidityOracle + ?Sized>(
    oracle: &mut O,
    weights: &Weights,
    family_constant: Ratio,
    bound: u64,
    check: &CheckParams,
    warm: Option<u64>,
    tuning: Tuning,
) -> Result<Solution, CoreError> {
    let family = Family::new(weights, family_constant, bound)?;
    // Above the gate, every probe of this search shares one incremental
    // cursor (memoized grid counts + same-interval splicing) instead of
    // rebuilding the member from scratch; below it the legacy path runs,
    // bit-identical stats included.
    let mut cursor =
        (weights.len() >= tuning.incremental_min_parties).then(|| FamilyCursor::new(&family));
    // Hintless large solves place the weighted sampler's boundary estimate
    // over the cold bisection as a *trust window*: midpoints far outside
    // the window take the estimate's word (below → assume invalid, above →
    // assume valid) without probing, midpoints inside are probed exactly,
    // and whichever assumed verdicts the converged bracket still rests on
    // are re-probed for real before the answer is accepted. A refuted
    // assumption discards the window and reruns the untrusted bisection,
    // so a bad estimate only costs probes, never correctness. Real warm
    // hints win: a previous epoch's total beats any statistical estimate.
    let trust_window = if warm.is_none() && weights.len() >= tuning.sampling_min_parties {
        let (caps, q) = match *check {
            CheckParams::Restriction { capacity, alpha_n } => (vec![capacity], alpha_n),
            CheckParams::Separation { cap_low, cap_high } => {
                (vec![cap_low, cap_high], Ratio::ONE)
            }
        };
        let c = family_constant;
        sampling::estimate_boundary_total(
            weights,
            &caps,
            q.num(),
            q.den(),
            c.num(),
            c.den(),
            sampling::ESTIMATE_DRAWS,
            sampling::ESTIMATE_SEED,
        )
        .map(|est| {
            // Window half-width ~17% of the estimate: 2-3x the sampler's
            // observed worst-case error at `ESTIMATE_DRAWS`, and still
            // narrow enough to absorb the far-field dyadic mids. In-window
            // mids far from the true flip stay cheap (the oracle settles
            // them by bounds without the DP), so width costs little.
            let est = est.clamp(1, bound);
            let delta = (est / 6).max(64);
            (est.saturating_sub(delta), est.saturating_add(delta))
        })
    } else {
        None
    };
    let mut lo = 0u64;
    let mut hi = bound;
    let mut checked = 0u64;
    let mut saved = 0u64;
    let mut search = || -> Result<(), CoreError> {
        let mut probe = |total: u64| -> Result<Verdict, CoreError> {
            let cand = match cursor.as_mut() {
                Some(cur) => cur.advance_to(total)?,
                None => family.assignment_with_total(total)?,
            };
            let member = FamilyMember { weights, tickets: &cand, total };
            checked += 1;
            oracle.check(&member, check)
        };
        if let Some(hint) = warm {
            if hint > 0 && hint < bound {
                match probe(hint)? {
                    Verdict::Valid => {
                        // Gallop down for an invalid lower anchor.
                        hi = hint;
                        let mut step = 1u64;
                        loop {
                            let p = hi.saturating_sub(step);
                            if p == 0 {
                                break; // the all-zero member anchors lo.
                            }
                            match probe(p)? {
                                Verdict::Valid => hi = p,
                                Verdict::Invalid => {
                                    lo = p;
                                    break;
                                }
                            }
                            step = step.saturating_mul(2);
                        }
                    }
                    Verdict::Invalid => {
                        // Gallop up for a valid upper anchor.
                        lo = hint;
                        let mut step = 1u64;
                        loop {
                            let p = lo.saturating_add(step);
                            if p >= bound {
                                break; // the bound member anchors hi.
                            }
                            match probe(p)? {
                                Verdict::Invalid => lo = p,
                                Verdict::Valid => {
                                    hi = p;
                                    break;
                                }
                            }
                            step = step.saturating_mul(2);
                        }
                    }
                }
            }
        }
        // The bisection below IS the legacy cold loop when `trust` is
        // `None` (warm path, small instances, estimator declined). With a
        // window, the mid sequence is the legacy one — assumed verdicts
        // stand in for probes outside the window — so whenever the
        // assumptions are right (endpoint re-probes confirm the bracket)
        // the landing is bit-identical to the untrusted search.
        let mut trust = trust_window;
        loop {
            let mut lo_assumed = false;
            let mut hi_assumed = false;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                match trust {
                    Some((wlo, _)) if mid < wlo => {
                        lo = mid;
                        lo_assumed = true;
                        saved += 1;
                    }
                    Some((_, whi)) if mid > whi => {
                        hi = mid;
                        hi_assumed = true;
                        saved += 1;
                    }
                    _ => match probe(mid)? {
                        Verdict::Valid => {
                            hi = mid;
                            hi_assumed = false;
                        }
                        Verdict::Invalid => {
                            lo = mid;
                            lo_assumed = false;
                        }
                    },
                }
            }
            // The answer may rest on assumed verdicts; make them real.
            // (`lo == 0` / `hi == bound` anchors are real by definition —
            // the all-zero member is invalid, the bound member valid.)
            let mut refuted = false;
            if hi_assumed {
                saved = saved.saturating_sub(1);
                refuted |= matches!(probe(hi)?, Verdict::Invalid);
            }
            if !refuted && lo_assumed {
                saved = saved.saturating_sub(1);
                refuted |= matches!(probe(lo)?, Verdict::Valid);
            }
            if !refuted {
                break;
            }
            // The estimate steered the bracket somewhere the exact
            // predicate disowns: drop the window and rerun from scratch.
            trust = None;
            saved = 0;
            lo = 0;
            hi = bound;
        }
        Ok(())
    };
    let outcome = search();
    let mut stats = oracle.take_stats();
    outcome?;
    stats.candidates_checked += checked;
    stats.settled_by_theorem += u64::from(hi == bound);
    stats.probes_saved += saved;
    let assignment = match cursor.as_mut() {
        Some(cur) => cur.advance_to(hi)?,
        None => family.assignment_with_total(hi)?,
    };
    stats.cursor_advances += cursor.as_ref().map_or(0, |cur| cur.reused());
    Ok(Solution { assignment, ticket_bound: bound, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::CachingOracle;
    use crate::verify::{
        verify_qualification, verify_restriction, verify_restriction_exhaustive,
        verify_separation,
    };
    use proptest::prelude::*;

    fn weights(ws: &[u64]) -> Weights {
        Weights::new(ws.to_vec()).unwrap()
    }

    #[test]
    fn solves_equal_weights() {
        // n equal parties, WR(1/3, 1/2): one ticket each is valid, and it is
        // the family's natural answer.
        let w = weights(&[7; 9]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
        assert!(sol.total_tickets() <= 9, "equal weights need few tickets");
    }

    #[test]
    fn solves_single_whale() {
        // One party with 97% of the stake: a single ticket to the whale
        // already violates nothing? t({whale}) = T: whale weight not under
        // capacity, small parties have 0 tickets -> valid with T = 1.
        let w = weights(&[970, 10, 10, 10]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        assert_eq!(sol.total_tickets(), 1);
        assert_eq!(sol.assignment.get(0), 1);
    }

    #[test]
    fn local_minimum_predecessor_is_invalid() {
        let w = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        let total = u64::try_from(sol.total_tickets()).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        // Predecessor family member must be invalid (local minimality).
        let fam = Family::new(&w, p.family_constant(), sol.ticket_bound).unwrap();
        let prev = fam.assignment_with_total(total - 1).unwrap();
        assert!(!verify_restriction(&w, &prev, &p).unwrap());
    }

    #[test]
    fn linear_mode_is_valid_but_not_smaller() {
        let w = weights(&[100, 70, 55, 13, 8, 8, 4, 2, 1, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let full = Swiper::new().solve_restriction(&w, &p).unwrap();
        let linear = Swiper::with_mode(Mode::Linear).solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &full.assignment, &p).unwrap());
        assert!(verify_restriction(&w, &linear.assignment, &p).unwrap());
        assert!(linear.total_tickets() >= full.total_tickets());
        assert_eq!(linear.stats.dp_invocations, 0, "linear mode never runs the DP");
    }

    #[test]
    fn qualification_solution_satisfies_wq() {
        let w = weights(&[40, 25, 20, 10, 5]);
        let q = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let sol = Swiper::new().solve_qualification(&w, &q).unwrap();
        assert!(verify_qualification(&w, &sol.assignment, &q).unwrap());
        assert!(sol.total_tickets() <= u128::from(q.ticket_bound(5).unwrap()));
    }

    #[test]
    fn separation_solution_satisfies_ws() {
        let w = weights(&[40, 25, 20, 10, 5]);
        let s = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_separation(&w, &s).unwrap();
        assert!(verify_separation(&w, &sol.assignment, &s).unwrap());
        assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
    }

    #[test]
    fn worst_case_equal_weights_stays_under_bound() {
        // Equal weights are the classic worst case for weight reduction.
        for n in [3usize, 10, 31, 100] {
            let w = Weights::new(vec![1; n]).unwrap();
            let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
            let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
            assert!(verify_restriction(&w, &sol.assignment, &p).unwrap(), "n={n}");
            assert!(sol.total_tickets() <= u128::from(sol.ticket_bound), "n={n}");
        }
    }

    #[test]
    fn stats_count_checks() {
        let w = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(sol.stats.candidates_checked > 0);
        let settled = sol.stats.settled_by_upper_bound
            + sol.stats.settled_by_lower_bound
            + sol.stats.dp_invocations;
        assert!(settled <= sol.stats.candidates_checked + 2);
    }

    #[test]
    fn oracle_reuse_across_solves_is_isolated() {
        // One oracle driven through many solves must behave as if fresh
        // each time: scratch is rebuilt per candidate and stats drain per
        // solve.
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let a = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let b = weights(&[9, 9, 9, 9, 9, 9]);
        let solver = Swiper::new();
        let fresh_a = solver.solve_restriction(&a, &p).unwrap();
        let fresh_b = solver.solve_restriction(&b, &p).unwrap();
        let mut shared = FullOracle::new();
        for _ in 0..3 {
            let ra = solver.solve_restriction_with(&mut shared, &a, &p).unwrap();
            let rb = solver.solve_restriction_with(&mut shared, &b, &p).unwrap();
            assert_eq!(ra, fresh_a);
            assert_eq!(rb, fresh_b);
        }
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let ws = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let vectors = [
            vec![100u64, 70, 55, 13, 8, 8, 4, 2, 1, 1, 1],
            vec![7; 9],
            vec![970, 10, 10, 10],
            vec![50, 30, 11, 5, 2, 1, 1],
        ];
        let mut instances = Vec::new();
        for v in &vectors {
            let w = weights(v);
            instances.push(Instance::restriction(w.clone(), wr));
            instances.push(Instance::qualification(w.clone(), wq));
            instances.push(Instance::separation(w, ws));
        }
        for mode in [Mode::Full, Mode::Linear] {
            let solver = Swiper::with_mode(mode);
            let batch = solver.solve_many(&instances).unwrap();
            assert_eq!(batch.len(), instances.len());
            for (inst, sol) in instances.iter().zip(&batch) {
                assert_eq!(sol, &solver.solve_instance(inst).unwrap(), "{mode:?}");
            }
        }
    }

    #[test]
    fn solve_many_empty_batch() {
        assert_eq!(Swiper::new().solve_many(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn resolve_from_matches_cold_solve_on_all_shapes() {
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let wq = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let ws = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let old = weights(&[100, 70, 55, 13, 8, 8, 4, 2, 1, 1, 1]);
        // One party's stake moved ~10%: the epoch-delta shape.
        let new = weights(&[100, 77, 55, 13, 8, 8, 4, 2, 1, 1, 1]);
        let solver = Swiper::new();
        for (prev_inst, next_inst) in [
            (Instance::restriction(old.clone(), wr), Instance::restriction(new.clone(), wr)),
            (
                Instance::qualification(old.clone(), wq),
                Instance::qualification(new.clone(), wq),
            ),
            (Instance::separation(old.clone(), ws), Instance::separation(new.clone(), ws)),
        ] {
            let prev = solver.solve_instance(&prev_inst).unwrap();
            let cold = solver.solve_instance(&next_inst).unwrap();
            let warm = solver.resolve_from(&prev, &next_inst).unwrap();
            assert_eq!(warm.assignment, cold.assignment);
            assert_eq!(warm.ticket_bound, cold.ticket_bound);
            assert_eq!(warm.total_tickets(), cold.total_tickets());
            assert!(
                warm.stats.candidates_checked <= cold.stats.candidates_checked,
                "warm bracket must not widen the search"
            );
        }
    }

    #[test]
    fn resolve_from_with_useless_hint_falls_back_to_cold() {
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let w = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let inst = Instance::restriction(w.clone(), p);
        let solver = Swiper::new();
        let cold = solver.solve_instance(&inst).unwrap();
        // A stale solution whose total is at/above the new bound: hint is
        // ignored and the warm path reproduces the cold search exactly.
        let stale = Solution {
            assignment: TicketAssignment::new(vec![cold.ticket_bound + 7]),
            ticket_bound: cold.ticket_bound,
            stats: SolveStats::default(),
        };
        let warm = solver.resolve_from(&stale, &inst).unwrap();
        assert_eq!(warm, cold, "cold fallback must be bit-identical, stats included");
    }

    #[test]
    fn resolve_from_on_identical_instance_needs_two_checks() {
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        // Near-equal weights keep the optimum in the family's interior.
        let w = weights(&[9, 9, 9, 9, 8, 8, 8, 7, 7]);
        let inst = Instance::restriction(w, p);
        let solver = Swiper::new();
        let cold = solver.solve_instance(&inst).unwrap();
        let total = u64::try_from(cold.total_tickets()).unwrap();
        assert!(total > 1 && total < cold.ticket_bound, "interior optimum: {total}");
        let warm = solver.resolve_from(&cold, &inst).unwrap();
        assert_eq!(warm.assignment, cold.assignment);
        // Unchanged epoch: probe the old total (valid) and its predecessor
        // (invalid) — nothing else.
        assert_eq!(warm.stats.candidates_checked, 2);
        assert!(cold.stats.candidates_checked > 2, "cold search bisects from [0, bound]");
    }

    #[test]
    fn resolve_many_with_matches_sequential_and_keeps_oracles() {
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let vectors: Vec<Vec<u64>> =
            (0..6).map(|k| (1..=12u64).map(|i| i * i + k * 17).collect::<Vec<u64>>()).collect();
        let instances: Vec<Instance> =
            vectors.iter().map(|v| Instance::restriction(weights(v), wr)).collect();
        let solver = Swiper::new();
        let mut oracles: Vec<CachingOracle<FullOracle>> =
            instances.iter().map(|_| CachingOracle::new(FullOracle::new())).collect();
        let priors: Vec<Option<Solution>> = vec![None; instances.len()];
        let first = solver.resolve_many_with(&instances, &priors, &mut oracles).unwrap();
        for (inst, sol) in instances.iter().zip(&first) {
            let alone = solver.solve_instance(inst).unwrap();
            assert_eq!(sol.assignment, alone.assignment);
        }
        // Epoch 2 over the same snapshots: warm-started, fully cached.
        let priors: Vec<Option<Solution>> = first.iter().cloned().map(Some).collect();
        let second = solver.resolve_many_with(&instances, &priors, &mut oracles).unwrap();
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(b.stats.cache_misses, 0, "persistent caches answer the re-solve");
            assert!(b.stats.cache_hits > 0);
        }
    }

    /// The seed's pre-oracle validity cascade for Weight Restriction,
    /// kept verbatim as the reference for the equivalence proptests.
    mod reference {
        use crate::assignment::TicketAssignment;
        use crate::error::CoreError;
        use crate::family::Family;
        use crate::knapsack::{self, Item};
        use crate::problems::{WeightRestriction, WeightSeparation};
        use crate::ratio::Ratio;
        use crate::solver::{Mode, Solution, SolveStats};
        use crate::verify::{strict_capacity, ticket_target};
        use crate::weights::Weights;

        struct RestrictionCheck {
            capacity: u128,
            alpha_n: Ratio,
        }

        struct SeparationCheck {
            cap_low: u128,
            cap_high: u128,
        }

        fn to_items(weights: &Weights, tickets: &TicketAssignment) -> Vec<Item> {
            weights
                .as_slice()
                .iter()
                .zip(tickets.as_slice())
                .map(|(&weight, &profit)| Item { profit, weight })
                .collect()
        }

        fn check_restriction(
            mode: Mode,
            check: &RestrictionCheck,
            items: &[Item],
            total: u64,
            stats: &mut SolveStats,
        ) -> Result<bool, CoreError> {
            if total == 0 {
                return Ok(false);
            }
            let target = ticket_target(check.alpha_n, u128::from(total))?;
            let target = u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?;
            if target > total {
                return Ok(true);
            }
            if !knapsack::fractional_upper_bound_reaches(items, check.capacity, target) {
                stats.settled_by_upper_bound += 1;
                return Ok(true);
            }
            if mode == Mode::Linear {
                return Ok(false);
            }
            if knapsack::greedy_lower_bound_reaches(items, check.capacity, target) {
                stats.settled_by_lower_bound += 1;
                return Ok(false);
            }
            stats.dp_invocations += 1;
            let reached = knapsack::max_profit_dp(items, check.capacity, target) >= target;
            Ok(!reached)
        }

        fn check_separation(
            mode: Mode,
            check: &SeparationCheck,
            items: &[Item],
            total: u64,
            stats: &mut SolveStats,
        ) -> Result<bool, CoreError> {
            if total == 0 {
                return Ok(false);
            }
            let a_ub = knapsack::fractional_upper_bound_floor(items, check.cap_low);
            let b_ub = knapsack::fractional_upper_bound_floor(items, check.cap_high);
            if a_ub + b_ub < u128::from(total) {
                stats.settled_by_upper_bound += 1;
                return Ok(true);
            }
            if mode == Mode::Linear {
                return Ok(false);
            }
            let a_lb = knapsack::greedy_lower_bound(items, check.cap_low);
            let b_lb = knapsack::greedy_lower_bound(items, check.cap_high);
            if a_lb + b_lb >= u128::from(total) {
                stats.settled_by_lower_bound += 1;
                return Ok(false);
            }
            stats.dp_invocations += 1;
            let a = u128::from(knapsack::max_profit_dp(items, check.cap_low, total));
            let b = u128::from(knapsack::max_profit_dp(items, check.cap_high, total));
            Ok(a + b < u128::from(total))
        }

        /// Seed `Swiper::solve_restriction`, verbatim.
        pub fn solve_restriction(
            mode: Mode,
            weights: &Weights,
            params: &WeightRestriction,
        ) -> Result<Solution, CoreError> {
            let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
            let bound = params.ticket_bound(n)?.max(1);
            let family = Family::new(weights, params.family_constant(), bound)?;
            let check = RestrictionCheck {
                capacity: strict_capacity(params.alpha_w(), weights.total())?,
                alpha_n: params.alpha_n(),
            };
            let mut stats = SolveStats::default();
            let mut lo = 0u64;
            let mut hi = bound;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let cand = family.assignment_with_total(mid)?;
                stats.candidates_checked += 1;
                let items = to_items(weights, &cand);
                if check_restriction(mode, &check, &items, mid, &mut stats)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            stats.settled_by_theorem += u64::from(hi == bound);
            let assignment = family.assignment_with_total(hi)?;
            Ok(Solution { assignment, ticket_bound: bound, stats })
        }

        /// Seed `Swiper::solve_separation`, verbatim.
        pub fn solve_separation(
            mode: Mode,
            weights: &Weights,
            params: &WeightSeparation,
        ) -> Result<Solution, CoreError> {
            let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
            let bound = params.ticket_bound(n)?.max(1);
            let family = Family::new(weights, params.family_constant(), bound)?;
            let check = SeparationCheck {
                cap_low: strict_capacity(params.alpha(), weights.total())?,
                cap_high: strict_capacity(params.beta().one_minus()?, weights.total())?,
            };
            let mut stats = SolveStats::default();
            let mut lo = 0u64;
            let mut hi = bound;
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                let cand = family.assignment_with_total(mid)?;
                stats.candidates_checked += 1;
                let items = to_items(weights, &cand);
                if check_separation(mode, &check, &items, mid, &mut stats)? {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            stats.settled_by_theorem += u64::from(hi == bound);
            let assignment = family.assignment_with_total(hi)?;
            Ok(Solution { assignment, ticket_bound: bound, stats })
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn wr_solutions_always_verify(
            ws in proptest::collection::vec(1u64..1_000, 1..14),
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(aw, an).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let sol = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
                prop_assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
                if w.len() < 15 {
                    prop_assert!(verify_restriction_exhaustive(&w, &sol.assignment, &p));
                }
                prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
            }
        }

        #[test]
        fn ws_solutions_always_verify(
            ws in proptest::collection::vec(1u64..1_000, 1..12),
            pa in 1u128..5, pb in 2u128..6,
        ) {
            let alpha = Ratio::of(pa, 6);
            let beta = Ratio::of(pb, 6);
            prop_assume!(alpha < beta && alpha.is_proper() && beta.is_proper());
            let w = Weights::new(ws).unwrap();
            let p = WeightSeparation::new(alpha, beta).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let sol = Swiper::with_mode(mode).solve_separation(&w, &p).unwrap();
                prop_assert!(verify_separation(&w, &sol.assignment, &p).unwrap());
                prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
            }
        }

        /// Oracle equivalence (WR): the refactored solver must produce the
        /// *identical* `TicketAssignment` as the seed cascade on random
        /// skewed weight vectors — and identical `SolveStats`, so
        /// `dp_invocations` cannot regress.
        #[test]
        fn oracle_matches_seed_cascade_wr(
            mut ws in proptest::collection::vec(1u64..100_000, 1..24),
            whale in 1u64..10_000_000,
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            // Skew the vector: real stake distributions are whale-heavy.
            ws.push(whale);
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(aw, an).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let new = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
                let old = reference::solve_restriction(mode, &w, &p).unwrap();
                prop_assert_eq!(&new.assignment, &old.assignment, "{:?}", mode);
                prop_assert_eq!(new.ticket_bound, old.ticket_bound);
                prop_assert_eq!(new.stats, old.stats, "{:?}", mode);
                prop_assert!(new.stats.dp_invocations <= old.stats.dp_invocations);
            }
        }

        /// The work-stealing batch fan-out must be invisible: whatever
        /// order workers claim instances in, `solve_many` returns
        /// solutions in input order with assignments *and* per-solve
        /// stats bit-identical to the sequential one-oracle-per-instance
        /// path. Mixed instance sizes (one whale-heavy vector among small
        /// ones) exercise the imbalance the cursor exists to absorb.
        #[test]
        fn solve_many_work_stealing_matches_sequential_order_and_stats(
            vectors in proptest::collection::vec(
                proptest::collection::vec(1u64..50_000, 1..12), 1..8),
            whale in 10_000u64..10_000_000,
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            let p = WeightRestriction::new(aw, an).unwrap();
            let instances: Vec<Instance> = vectors
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let mut v = v.clone();
                    if i == 0 {
                        // One oversized instance at the front: under the
                        // old contiguous chunking this serialized its
                        // whole chunk; the cursor must not change results.
                        v.push(whale);
                    }
                    Instance::restriction(Weights::new(v).unwrap(), p)
                })
                .collect();
            let solver = Swiper::new();
            let batch = solver.solve_many(&instances).unwrap();
            prop_assert_eq!(batch.len(), instances.len());
            for (inst, sol) in instances.iter().zip(&batch) {
                let alone = solver.solve_instance(inst).unwrap();
                prop_assert_eq!(&sol.assignment, &alone.assignment);
                prop_assert_eq!(sol.ticket_bound, alone.ticket_bound);
                prop_assert_eq!(sol.stats, alone.stats, "stats identity");
            }
        }

        /// Tentpole pin (cursor): with the incremental gate forced open,
        /// the cursor-backed solver must be bit-identical to the legacy
        /// per-probe path — assignment, bound, and every stat except the
        /// cursor's own reuse counter.
        #[test]
        fn cursor_backed_solver_matches_legacy_path(
            mut ws in proptest::collection::vec(1u64..100_000, 1..24),
            whale in 1u64..10_000_000,
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            ws.push(whale);
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(aw, an).unwrap();
            let s = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
            let tuned = Swiper::with_tuning(
                Mode::Full,
                Tuning { incremental_min_parties: 1, sampling_min_parties: usize::MAX },
            );
            let legacy = Swiper::new();
            for (cur, old) in [
                (tuned.solve_restriction(&w, &p), legacy.solve_restriction(&w, &p)),
                (tuned.solve_separation(&w, &s), legacy.solve_separation(&w, &s)),
            ] {
                let (cur, old) = (cur.unwrap(), old.unwrap());
                prop_assert_eq!(&cur.assignment, &old.assignment);
                prop_assert_eq!(cur.ticket_bound, old.ticket_bound);
                let mut masked = cur.stats;
                masked.cursor_advances = 0;
                prop_assert_eq!(masked, old.stats, "only the reuse counter may differ");
            }
        }

        /// Tentpole pin (sampler): the sampler-narrowed bracket stays a
        /// valid local minimum under the theoretical bound, and whenever
        /// the validity predicate is monotone along the family (no dips —
        /// checked exhaustively) it lands exactly where full bisection
        /// lands. Exact probes stay authoritative either way.
        #[test]
        fn sampler_narrowed_bracket_matches_full_bracket(
            mut ws in proptest::collection::vec(1u64..100_000, 1..20),
            whale in 1u64..10_000_000,
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            ws.push(whale);
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(aw, an).unwrap();
            let sampled = Swiper::with_tuning(
                Mode::Full,
                Tuning { incremental_min_parties: usize::MAX, sampling_min_parties: 1 },
            )
            .solve_restriction(&w, &p)
            .unwrap();
            let cold = Swiper::new().solve_restriction(&w, &p).unwrap();
            prop_assert!(verify_restriction(&w, &sampled.assignment, &p).unwrap());
            prop_assert!(sampled.total_tickets() <= u128::from(sampled.ticket_bound));
            let total = u64::try_from(sampled.total_tickets()).unwrap();
            let fam = Family::new(&w, p.family_constant(), sampled.ticket_bound).unwrap();
            if total < sampled.ticket_bound {
                // Local minimality: the predecessor member is invalid.
                let prev = fam.assignment_with_total(total - 1).unwrap();
                prop_assert!(!verify_restriction(&w, &prev, &p).unwrap());
            }
            let monotone = {
                let mut seen_valid = false;
                let mut monotone = true;
                for t in 1..=sampled.ticket_bound {
                    let member = fam.assignment_with_total(t).unwrap();
                    let valid = verify_restriction(&w, &member, &p).unwrap();
                    if seen_valid && !valid {
                        monotone = false;
                        break;
                    }
                    seen_valid |= valid;
                }
                monotone
            };
            if monotone {
                prop_assert_eq!(&sampled.assignment, &cold.assignment);
                prop_assert_eq!(sampled.total_tickets(), cold.total_tickets());
            }
        }

        /// Oracle equivalence (WS): same pinning for the separation shape.
        #[test]
        fn oracle_matches_seed_cascade_ws(
            ws in proptest::collection::vec(1u64..100_000, 1..16),
            pa in 1u128..5, pb in 2u128..6,
        ) {
            let alpha = Ratio::of(pa, 6);
            let beta = Ratio::of(pb, 6);
            prop_assume!(alpha < beta && alpha.is_proper() && beta.is_proper());
            let w = Weights::new(ws).unwrap();
            let p = WeightSeparation::new(alpha, beta).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let new = Swiper::with_mode(mode).solve_separation(&w, &p).unwrap();
                let old = reference::solve_separation(mode, &w, &p).unwrap();
                prop_assert_eq!(&new.assignment, &old.assignment, "{:?}", mode);
                prop_assert_eq!(new.stats, old.stats, "{:?}", mode);
            }
        }
    }
}
