//! The Swiper approximate solver (paper, Section 3).
//!
//! Swiper searches the totally-ordered `t(s, k)` family for a *local
//! minimum*: a viable assignment whose predecessor (one fewer ticket) is not
//! viable. Appendix A proves every such local minimum respects the
//! Theorem 2.1/2.3/2.4 upper bounds, and that the family member carrying
//! exactly the upper-bound total is always viable ("bootstrapping"), so a
//! binary search between the invalid all-zero member and the bound member
//! suffices.
//!
//! Two modes mirror the prototype:
//!
//! * [`Mode::Full`] — exact validity via the three-valued quick test
//!   (quasilinear bounds) with the `O(n*T)` knapsack DP only on
//!   "uncertain"; finds a local minimum.
//! * [`Mode::Linear`] — only the conservative bound (never falsely accepts);
//!   guaranteed valid but possibly not locally minimal, `~O(n)` per check.

use serde::{Deserialize, Serialize};

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::family::Family;
use crate::knapsack::{self, Item};
use crate::problems::{WeightQualification, WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::verify::{strict_capacity, ticket_target};
use crate::weights::Weights;

/// Validity-checking regime (the prototype's `--linear` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Mode {
    /// Quick test + exact DP on uncertainty; local minimum guaranteed.
    #[default]
    Full,
    /// Conservative bound only; valid but possibly more tickets.
    Linear,
}

/// Counters describing how a solve went; useful for the paper's ">3x fewer
/// DP calls" claim and for regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Family members materialized and checked.
    pub candidates_checked: u64,
    /// Checks settled by the conservative (fractional upper) bound.
    pub settled_by_upper_bound: u64,
    /// Checks settled by the liberal (greedy lower) bound.
    pub settled_by_lower_bound: u64,
    /// Checks that needed the exact DP.
    pub dp_invocations: u64,
    /// Checks settled by the theoretical bound itself (bootstrapping).
    pub settled_by_theorem: u64,
}

/// A solved weight reduction instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// The ticket assignment found.
    pub assignment: TicketAssignment,
    /// The theoretical upper bound for this instance (Theorems 2.1/2.3/2.4).
    pub ticket_bound: u64,
    /// Solve-time counters.
    pub stats: SolveStats,
}

impl Solution {
    /// Total tickets allocated.
    pub fn total_tickets(&self) -> u128 {
        self.assignment.total()
    }
}

/// The solver. Construct with [`Swiper::new`] (full mode) or
/// [`Swiper::with_mode`].
///
/// # Examples
///
/// ```
/// use swiper_core::{Ratio, Swiper, Weights, WeightRestriction};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let weights = Weights::new(vec![100, 50, 20, 10, 5, 5, 5, 5])?;
/// let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// let solution = Swiper::new().solve_restriction(&weights, &params)?;
/// assert!(solution.total_tickets() <= u128::from(solution.ticket_bound));
/// assert!(swiper_core::verify_restriction(
///     &weights, &solution.assignment, &params)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Swiper {
    mode: Mode,
}

/// How a WR-shaped validity check is parameterized for one solve.
struct RestrictionCheck {
    capacity: u128,
    alpha_n: Ratio,
}

/// How a WS validity check is parameterized for one solve.
struct SeparationCheck {
    cap_low: u128,
    cap_high: u128,
}

impl Swiper {
    /// Full-mode solver.
    pub fn new() -> Self {
        Swiper { mode: Mode::Full }
    }

    /// Solver with an explicit mode.
    pub fn with_mode(mode: Mode) -> Self {
        Swiper { mode }
    }

    /// The active mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Solves Weight Restriction (Problem 1).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_restriction(
        &self,
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Solution, CoreError> {
        let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
        let bound = params.ticket_bound(n)?.max(1);
        let family = Family::new(weights, params.family_constant(), bound)?;
        let check = RestrictionCheck {
            capacity: strict_capacity(params.alpha_w(), weights.total())?,
            alpha_n: params.alpha_n(),
        };
        let mut stats = SolveStats::default();
        let mut lo = 0u64;
        let mut hi = bound;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let cand = family.assignment_with_total(mid)?;
            stats.candidates_checked += 1;
            let items = to_items(weights, &cand);
            if self.check_restriction(&check, &items, mid, &mut stats)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        stats.settled_by_theorem += u64::from(hi == bound);
        let assignment = family.assignment_with_total(hi)?;
        Ok(Solution { assignment, ticket_bound: bound, stats })
    }

    /// Returns the `t(s, k)` family member with exactly `total` tickets
    /// for a Weight Restriction instance — **without** checking validity.
    ///
    /// Members with `total >= params.ticket_bound(n)` are valid by
    /// Theorem 2.1. Larger members are closer to proportional
    /// (`t_i ~ s * w_i`), which the fairness extension
    /// ([`crate::fairness`]) exploits: a near-proportional base keeps the
    /// rebalancing lottery small.
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn restriction_family_member(
        &self,
        weights: &Weights,
        params: &WeightRestriction,
        total: u64,
    ) -> Result<TicketAssignment, CoreError> {
        let family = Family::new(weights, params.family_constant(), total)?;
        family.assignment_with_total(total)
    }

    /// Solves Weight Qualification (Problem 2) through the Theorem 2.2
    /// reduction; the returned assignment satisfies the WQ property (and the
    /// equivalent WR property).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_qualification(
        &self,
        weights: &Weights,
        params: &WeightQualification,
    ) -> Result<Solution, CoreError> {
        self.solve_restriction(weights, &params.to_restriction())
    }

    /// Solves Weight Separation (Problem 3).
    ///
    /// # Errors
    ///
    /// Propagates parameter/overflow errors; see [`CoreError`].
    pub fn solve_separation(
        &self,
        weights: &Weights,
        params: &WeightSeparation,
    ) -> Result<Solution, CoreError> {
        let n = u64::try_from(weights.len()).map_err(|_| CoreError::ArithmeticOverflow)?;
        let bound = params.ticket_bound(n)?.max(1);
        let family = Family::new(weights, params.family_constant(), bound)?;
        let check = SeparationCheck {
            cap_low: strict_capacity(params.alpha(), weights.total())?,
            cap_high: strict_capacity(params.beta().one_minus()?, weights.total())?,
        };
        let mut stats = SolveStats::default();
        let mut lo = 0u64;
        let mut hi = bound;
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let cand = family.assignment_with_total(mid)?;
            stats.candidates_checked += 1;
            let items = to_items(weights, &cand);
            if self.check_separation(&check, &items, mid, &mut stats)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        stats.settled_by_theorem += u64::from(hi == bound);
        let assignment = family.assignment_with_total(hi)?;
        Ok(Solution { assignment, ticket_bound: bound, stats })
    }

    /// WR-shaped validity check for a family member with total `total`.
    fn check_restriction(
        &self,
        check: &RestrictionCheck,
        items: &[Item],
        total: u64,
        stats: &mut SolveStats,
    ) -> Result<bool, CoreError> {
        if total == 0 {
            return Ok(false);
        }
        let target = ticket_target(check.alpha_n, u128::from(total))?;
        let target = u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?;
        if target > total {
            return Ok(true);
        }
        // Conservative bound: certainly-unreachable target means valid.
        if !knapsack::fractional_upper_bound_reaches(items, check.capacity, target) {
            stats.settled_by_upper_bound += 1;
            return Ok(true);
        }
        if self.mode == Mode::Linear {
            // Only the conservative test is allowed: treat as invalid.
            return Ok(false);
        }
        if knapsack::greedy_lower_bound_reaches(items, check.capacity, target) {
            stats.settled_by_lower_bound += 1;
            return Ok(false);
        }
        stats.dp_invocations += 1;
        let reached = knapsack::max_profit_dp(items, check.capacity, target) >= target;
        Ok(!reached)
    }

    /// WS validity check for a family member with total `total`.
    fn check_separation(
        &self,
        check: &SeparationCheck,
        items: &[Item],
        total: u64,
        stats: &mut SolveStats,
    ) -> Result<bool, CoreError> {
        if total == 0 {
            return Ok(false);
        }
        // Conservative: floor(LP bound) on both sides still summing below
        // total certifies validity (a + b < T  <=>  max-light < min-heavy).
        let a_ub = knapsack::fractional_upper_bound_floor(items, check.cap_low);
        let b_ub = knapsack::fractional_upper_bound_floor(items, check.cap_high);
        if a_ub + b_ub < u128::from(total) {
            stats.settled_by_upper_bound += 1;
            return Ok(true);
        }
        if self.mode == Mode::Linear {
            return Ok(false);
        }
        let a_lb = knapsack::greedy_lower_bound(items, check.cap_low);
        let b_lb = knapsack::greedy_lower_bound(items, check.cap_high);
        if a_lb + b_lb >= u128::from(total) {
            stats.settled_by_lower_bound += 1;
            return Ok(false);
        }
        stats.dp_invocations += 1;
        let a = u128::from(knapsack::max_profit_dp(items, check.cap_low, total));
        let b = u128::from(knapsack::max_profit_dp(items, check.cap_high, total));
        Ok(a + b < u128::from(total))
    }
}

fn to_items(weights: &Weights, tickets: &TicketAssignment) -> Vec<Item> {
    weights
        .as_slice()
        .iter()
        .zip(tickets.as_slice())
        .map(|(&weight, &profit)| Item { profit, weight })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{
        verify_qualification, verify_restriction, verify_restriction_exhaustive,
        verify_separation,
    };
    use proptest::prelude::*;

    fn weights(ws: &[u64]) -> Weights {
        Weights::new(ws.to_vec()).unwrap()
    }

    #[test]
    fn solves_equal_weights() {
        // n equal parties, WR(1/3, 1/2): one ticket each is valid, and it is
        // the family's natural answer.
        let w = weights(&[7; 9]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
        assert!(sol.total_tickets() <= 9, "equal weights need few tickets");
    }

    #[test]
    fn solves_single_whale() {
        // One party with 97% of the stake: a single ticket to the whale
        // already violates nothing? t({whale}) = T: whale weight not under
        // capacity, small parties have 0 tickets -> valid with T = 1.
        let w = weights(&[970, 10, 10, 10]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        assert_eq!(sol.total_tickets(), 1);
        assert_eq!(sol.assignment.get(0), 1);
    }

    #[test]
    fn local_minimum_predecessor_is_invalid() {
        let w = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        let total = u64::try_from(sol.total_tickets()).unwrap();
        assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
        // Predecessor family member must be invalid (local minimality).
        let fam = Family::new(&w, p.family_constant(), sol.ticket_bound).unwrap();
        let prev = fam.assignment_with_total(total - 1).unwrap();
        assert!(!verify_restriction(&w, &prev, &p).unwrap());
    }

    #[test]
    fn linear_mode_is_valid_but_not_smaller() {
        let w = weights(&[100, 70, 55, 13, 8, 8, 4, 2, 1, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let full = Swiper::new().solve_restriction(&w, &p).unwrap();
        let linear = Swiper::with_mode(Mode::Linear).solve_restriction(&w, &p).unwrap();
        assert!(verify_restriction(&w, &full.assignment, &p).unwrap());
        assert!(verify_restriction(&w, &linear.assignment, &p).unwrap());
        assert!(linear.total_tickets() >= full.total_tickets());
        assert_eq!(linear.stats.dp_invocations, 0, "linear mode never runs the DP");
    }

    #[test]
    fn qualification_solution_satisfies_wq() {
        let w = weights(&[40, 25, 20, 10, 5]);
        let q = WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).unwrap();
        let sol = Swiper::new().solve_qualification(&w, &q).unwrap();
        assert!(verify_qualification(&w, &sol.assignment, &q).unwrap());
        assert!(sol.total_tickets() <= u128::from(q.ticket_bound(5).unwrap()));
    }

    #[test]
    fn separation_solution_satisfies_ws() {
        let w = weights(&[40, 25, 20, 10, 5]);
        let s = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_separation(&w, &s).unwrap();
        assert!(verify_separation(&w, &sol.assignment, &s).unwrap());
        assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
    }

    #[test]
    fn worst_case_equal_weights_stays_under_bound() {
        // Equal weights are the classic worst case for weight reduction.
        for n in [3usize, 10, 31, 100] {
            let w = Weights::new(vec![1; n]).unwrap();
            let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
            let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
            assert!(verify_restriction(&w, &sol.assignment, &p).unwrap(), "n={n}");
            assert!(sol.total_tickets() <= u128::from(sol.ticket_bound), "n={n}");
        }
    }

    #[test]
    fn stats_count_checks() {
        let w = weights(&[50, 30, 11, 5, 2, 1, 1]);
        let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
        assert!(sol.stats.candidates_checked > 0);
        let settled = sol.stats.settled_by_upper_bound
            + sol.stats.settled_by_lower_bound
            + sol.stats.dp_invocations;
        assert!(settled <= sol.stats.candidates_checked + 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn wr_solutions_always_verify(
            ws in proptest::collection::vec(1u64..1_000, 1..14),
            pw in 1u128..6, pn in 2u128..7,
        ) {
            let aw = Ratio::of(pw, 7);
            let an = Ratio::of(pn, 7);
            prop_assume!(aw < an && aw.is_proper() && an.is_proper());
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(aw, an).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let sol = Swiper::with_mode(mode).solve_restriction(&w, &p).unwrap();
                prop_assert!(verify_restriction(&w, &sol.assignment, &p).unwrap());
                if w.len() < 15 {
                    prop_assert!(verify_restriction_exhaustive(&w, &sol.assignment, &p));
                }
                prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
            }
        }

        #[test]
        fn ws_solutions_always_verify(
            ws in proptest::collection::vec(1u64..1_000, 1..12),
            pa in 1u128..5, pb in 2u128..6,
        ) {
            let alpha = Ratio::of(pa, 6);
            let beta = Ratio::of(pb, 6);
            prop_assume!(alpha < beta && alpha.is_proper() && beta.is_proper());
            let w = Weights::new(ws).unwrap();
            let p = WeightSeparation::new(alpha, beta).unwrap();
            for mode in [Mode::Full, Mode::Linear] {
                let sol = Swiper::with_mode(mode).solve_separation(&w, &p).unwrap();
                prop_assert!(verify_separation(&w, &sol.assignment, &p).unwrap());
                prop_assert!(sol.total_tickets() <= u128::from(sol.ticket_bound));
            }
        }
    }
}
