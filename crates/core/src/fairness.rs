//! Expected fairness — the paper's first Section 9 future-work direction,
//! implemented.
//!
//! Weight reduction distorts relative weights: a party's ticket share can
//! deviate from its weight share (the SSLE fairness caveat of Section 4.4).
//! The proposed fix: *"in addition to deterministically assigned tickets,
//! allocate some small number of tickets randomly so that each party gets
//! exactly the same fraction of tickets as its fraction of weight in
//! expectation ... while still preserving safety and liveness
//! deterministically, i.e., even in the worst case, when all the 'random'
//! tickets are received by the adversary."*
//!
//! [`FairExtension`] computes the minimal number `R` of lottery tickets
//! and the exact per-party probabilities such that
//! `E[tickets_i] / (T + R) = w_i / W`, samples lotteries deterministically
//! from a seed (e.g. a randomness-beacon output), and
//! [`FairExtension::verify_worst_case`] checks the deterministic safety
//! property: Weight Restriction holds even if the adversary wins every
//! lottery ticket.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::knapsack::{self, Item};
use crate::problems::WeightRestriction;
use crate::verify::{strict_capacity, ticket_target};
use crate::weights::Weights;

/// A fairness extension over a deterministic ticket assignment.
#[derive(Debug, Clone)]
pub struct FairExtension {
    weights: Weights,
    base: TicketAssignment,
    /// Number of lottery tickets.
    lottery: u64,
    /// Unnormalized per-party lottery weights `c_i = (T+R) w_i - t_i W`
    /// (each lottery ticket falls on party `i` with probability
    /// `c_i / (R W)`).
    cumulative: Vec<u128>,
    /// `sum c_i = R * W`.
    total_mass: u128,
}

impl FairExtension {
    /// Computes the minimal lottery size and the exact probabilities.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ZeroTotalWeight`] if a zero-weight party holds base
    ///   tickets (its expected share cannot be matched by adding tickets).
    /// * [`CoreError::ArithmeticOverflow`] on envelope overflow.
    pub fn new(weights: &Weights, base: &TicketAssignment) -> Result<Self, CoreError> {
        assert_eq!(weights.len(), base.len(), "weights/tickets length mismatch");
        let big_w = weights.total();
        let t = base.total();
        // Minimal R with (T+R) w_i >= t_i W for all i:
        // R >= t_i W / w_i - T, i.e. R = max_i ceil((t_i W - T w_i) / w_i).
        let mut lottery: u128 = 0;
        for (i, w) in weights.iter() {
            let ti = u128::from(base.get(i));
            if w == 0 {
                if ti > 0 {
                    return Err(CoreError::ZeroTotalWeight);
                }
                continue;
            }
            let need =
                ti.checked_mul(big_w).ok_or(CoreError::ArithmeticOverflow)?.saturating_sub(
                    t.checked_mul(u128::from(w)).ok_or(CoreError::ArithmeticOverflow)?,
                );
            let r_i = need.div_ceil(u128::from(w));
            lottery = lottery.max(r_i);
        }
        let lottery_u64 = u64::try_from(lottery).map_err(|_| CoreError::ArithmeticOverflow)?;
        // c_i = (T + R) w_i - t_i W  (all >= 0 by choice of R).
        let total_plus = t.checked_add(lottery).ok_or(CoreError::ArithmeticOverflow)?;
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc: u128 = 0;
        for (i, w) in weights.iter() {
            let c =
                total_plus.checked_mul(u128::from(w)).ok_or(CoreError::ArithmeticOverflow)?
                    - u128::from(base.get(i)) * big_w;
            acc = acc.checked_add(c).ok_or(CoreError::ArithmeticOverflow)?;
            cumulative.push(acc);
        }
        debug_assert_eq!(acc, lottery * big_w, "probability mass must be R * W");
        Ok(FairExtension {
            weights: weights.clone(),
            base: base.clone(),
            lottery: lottery_u64,
            cumulative,
            total_mass: acc,
        })
    }

    /// Number of lottery tickets `R`.
    pub fn lottery_tickets(&self) -> u64 {
        self.lottery
    }

    /// Combined total `T + R`.
    pub fn total(&self) -> u128 {
        self.base.total() + u128::from(self.lottery)
    }

    /// The exact expected ticket count of party `i`, as an exact fraction
    /// `(numerator, denominator)` over the combined total: equals
    /// `w_i (T + R) / W`, i.e. expected share = weight share.
    pub fn expected_tickets(&self, i: usize) -> (u128, u128) {
        (u128::from(self.weights.get(i)) * self.total(), self.weights.total())
    }

    /// Samples the lottery deterministically from `seed` (e.g. a beacon
    /// output), returning the combined assignment.
    pub fn sample(&self, seed: u64) -> TicketAssignment {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tickets: Vec<u64> = self.base.as_slice().to_vec();
        for _ in 0..self.lottery {
            if self.total_mass == 0 {
                break;
            }
            let draw = rng.random_range(0..self.total_mass);
            // First party whose cumulative mass exceeds the draw.
            let idx = self.cumulative.partition_point(|&c| c <= draw);
            tickets[idx] += 1;
        }
        TicketAssignment::new(tickets)
    }

    /// Deterministic worst-case safety check: Weight Restriction holds for
    /// the *combined* total even if the adversary receives **all** `R`
    /// lottery tickets — i.e. for every subset `S` with
    /// `w(S) < alpha_w W`: `t_base(S) + R < alpha_n (T + R)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::ArithmeticOverflow`] on envelope overflow.
    pub fn verify_worst_case(&self, params: &WeightRestriction) -> Result<bool, CoreError> {
        let capacity = strict_capacity(params.alpha_w(), self.weights.total())?;
        let target = ticket_target(params.alpha_n(), self.total())?;
        // Adversary holds R lottery tickets for free.
        let Some(base_target) = target.checked_sub(u128::from(self.lottery)) else {
            return Ok(false); // the lottery alone reaches the threshold
        };
        if base_target > self.base.total() {
            return Ok(true);
        }
        let base_target =
            u64::try_from(base_target).map_err(|_| CoreError::ArithmeticOverflow)?;
        let items: Vec<Item> = self
            .weights
            .as_slice()
            .iter()
            .zip(self.base.as_slice())
            .map(|(&weight, &profit)| Item { profit, weight })
            .collect();
        let reached = knapsack::max_profit_dp(&items, capacity, base_target) >= base_target;
        Ok(!reached)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use crate::solver::Swiper;
    use proptest::prelude::*;

    fn setup(ws: &[u64]) -> (Weights, TicketAssignment) {
        let weights = Weights::new(ws.to_vec()).unwrap();
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
        let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
        (weights, sol.assignment)
    }

    #[test]
    fn expected_share_equals_weight_share_exactly() {
        let (weights, base) = setup(&[50, 30, 15, 5]);
        let fair = FairExtension::new(&weights, &base).unwrap();
        for i in 0..4 {
            let (num, den) = fair.expected_tickets(i);
            // E[t_i] / (T+R) = w_i / W  <=>  num / (den * (T+R)) = w_i / W.
            assert_eq!(num * weights.total(), u128::from(weights.get(i)) * fair.total() * den);
        }
    }

    #[test]
    fn empirical_mean_approaches_expectation() {
        let (weights, base) = setup(&[50, 30, 15, 5]);
        let fair = FairExtension::new(&weights, &base).unwrap();
        let rounds = 4000u64;
        let mut sums = [0u128; 4];
        for seed in 0..rounds {
            let combined = fair.sample(seed);
            assert_eq!(combined.total(), fair.total());
            for i in 0..4 {
                sums[i] += u128::from(combined.get(i));
            }
        }
        for i in 0..4 {
            let mean = sums[i] as f64 / rounds as f64;
            let expect = weights.get(i) as f64 / weights.total() as f64 * fair.total() as f64;
            assert!(
                (mean - expect).abs() < 0.15 * expect.max(1.0),
                "party {i}: mean {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn zero_lottery_when_already_fair() {
        // Exactly proportional base assignment needs no lottery.
        let weights = Weights::new(vec![30, 20, 10]).unwrap();
        let base = TicketAssignment::new(vec![3, 2, 1]);
        let fair = FairExtension::new(&weights, &base).unwrap();
        assert_eq!(fair.lottery_tickets(), 0);
        assert_eq!(fair.sample(7), base);
    }

    #[test]
    fn zero_weight_party_with_tickets_rejected() {
        let weights = Weights::new(vec![10, 0]).unwrap();
        let base = TicketAssignment::new(vec![1, 1]);
        assert!(FairExtension::new(&weights, &base).is_err());
    }

    #[test]
    fn worst_case_safety_check() {
        let (weights, base) = setup(&[50, 30, 15, 5]);
        let fair = FairExtension::new(&weights, &base).unwrap();
        // The WR(1/4, 1/2) instance: is safety preserved even when all
        // lottery tickets land on the adversary? (May be true or false
        // depending on R; what must hold is consistency with the manual
        // computation.)
        let params = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
        let verdict = fair.verify_worst_case(&params).unwrap();
        // Manual exhaustive check.
        let n = weights.len();
        let (aw, an) = (params.alpha_w(), params.alpha_n());
        let mut manual = true;
        for mask in 0u32..(1 << n) {
            let set: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
            let w = weights.subset_weight(&set);
            let light = w * aw.den() < aw.num() * weights.total();
            if light {
                let tk = base.subset_tickets(&set) + u128::from(fair.lottery_tickets());
                if tk * an.den() >= an.num() * fair.total() {
                    manual = false;
                }
            }
        }
        assert_eq!(verdict, manual);
    }

    #[test]
    fn lottery_grows_with_distortion() {
        // A deliberately unfair base (whale underrepresented) needs a
        // large lottery to rebalance.
        let weights = Weights::new(vec![90, 10]).unwrap();
        let skewed = TicketAssignment::new(vec![1, 1]); // whale has 50% of tickets, deserves 90%
        let fair = FairExtension::new(&weights, &skewed).unwrap();
        assert!(fair.lottery_tickets() >= 8, "R = {}", fair.lottery_tickets());
        let (num, den) = fair.expected_tickets(0);
        assert_eq!(num * 100, 90 * fair.total() * den);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn sampling_preserves_total_and_support(
            ws in proptest::collection::vec(1u64..1000, 2..8),
            seed in any::<u64>(),
        ) {
            let (weights, base) = {
                let weights = Weights::new(ws).unwrap();
                let params =
                    WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
                let sol = Swiper::new().solve_restriction(&weights, &params).unwrap();
                (weights, sol.assignment)
            };
            let fair = FairExtension::new(&weights, &base).unwrap();
            let combined = fair.sample(seed);
            prop_assert_eq!(combined.total(), fair.total());
            // Lottery tickets only land on positive-weight parties, and
            // nobody loses base tickets.
            for i in 0..weights.len() {
                prop_assert!(combined.get(i) >= base.get(i));
                if weights.get(i) == 0 {
                    prop_assert_eq!(combined.get(i), base.get(i));
                }
            }
        }
    }
}
