//! Exact (optimal) weight reduction for tiny instances.
//!
//! The paper's Appendix B formulates Weight Restriction as a bi-level MIP
//! and reports it "prohibitively slow for inputs of size larger than a
//! couple of dozens". This module plays the same role as that reference
//! implementation: a ground-truth optimum for small `n`, used to measure
//! Swiper's approximation quality in tests and the `bounds` experiment.
//!
//! The search enumerates ticket totals `T = 1, 2, ...` and, for each, all
//! compositions of `T` into `n` parts (with a per-party cap of `T`),
//! checking validity exhaustively over the `2^n` subsets. The first `T`
//! admitting a valid assignment is optimal.

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::problems::{WeightQualification, WeightRestriction, WeightSeparation};
use crate::verify::{
    verify_qualification_exhaustive, verify_restriction_exhaustive,
    verify_separation_exhaustive,
};
use crate::weights::Weights;

/// Hard limits keeping the exponential search tractable.
const MAX_N: usize = 10;
const MAX_TOTAL: u64 = 24;

fn check_limits(weights: &Weights, limit: u64) -> Result<(), CoreError> {
    if weights.len() > MAX_N || limit > MAX_TOTAL {
        return Err(CoreError::BoundTooLarge { bound: u128::from(limit) });
    }
    Ok(())
}

/// Enumerates compositions of `total` into `n` non-negative parts, invoking
/// `f` on each; stops early when `f` returns `true` and returns the witness.
fn first_composition<F>(n: usize, total: u64, f: &mut F) -> Option<Vec<u64>>
where
    F: FnMut(&[u64]) -> bool,
{
    let mut parts = vec![0u64; n];
    fn rec<F: FnMut(&[u64]) -> bool>(
        parts: &mut Vec<u64>,
        idx: usize,
        remaining: u64,
        f: &mut F,
    ) -> bool {
        if idx + 1 == parts.len() {
            parts[idx] = remaining;
            let hit = f(parts);
            parts[idx] = 0;
            return hit;
        }
        for v in (0..=remaining).rev() {
            parts[idx] = v;
            if rec(parts, idx + 1, remaining - v, f) {
                return true;
            }
        }
        parts[idx] = 0;
        false
    }
    if rec(&mut parts, 0, total, f) {
        Some(parts)
    } else {
        None
    }
}

fn optimal_by<F>(weights: &Weights, limit: u64, mut valid: F) -> Option<TicketAssignment>
where
    F: FnMut(&TicketAssignment) -> bool,
{
    let n = weights.len();
    for total in 1..=limit {
        let mut found: Option<TicketAssignment> = None;
        first_composition(n, total, &mut |parts| {
            let t = TicketAssignment::new(parts.to_vec());
            if valid(&t) {
                found = Some(t);
                true
            } else {
                false
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Optimal Weight Restriction solution by exhaustive search, or `None` when
/// no assignment with at most `limit` tickets is valid.
///
/// # Errors
///
/// [`CoreError::BoundTooLarge`] when `n > 10` or `limit > 24`.
pub fn optimal_restriction(
    weights: &Weights,
    params: &WeightRestriction,
    limit: u64,
) -> Result<Option<TicketAssignment>, CoreError> {
    check_limits(weights, limit)?;
    Ok(optimal_by(weights, limit, |t| verify_restriction_exhaustive(weights, t, params)))
}

/// Optimal Weight Qualification solution by exhaustive search.
///
/// # Errors
///
/// [`CoreError::BoundTooLarge`] when `n > 10` or `limit > 24`.
pub fn optimal_qualification(
    weights: &Weights,
    params: &WeightQualification,
    limit: u64,
) -> Result<Option<TicketAssignment>, CoreError> {
    check_limits(weights, limit)?;
    Ok(optimal_by(weights, limit, |t| verify_qualification_exhaustive(weights, t, params)))
}

/// Optimal Weight Separation solution by exhaustive search.
///
/// # Errors
///
/// [`CoreError::BoundTooLarge`] when `n > 10` or `limit > 24`.
pub fn optimal_separation(
    weights: &Weights,
    params: &WeightSeparation,
    limit: u64,
) -> Result<Option<TicketAssignment>, CoreError> {
    check_limits(weights, limit)?;
    Ok(optimal_by(weights, limit, |t| verify_separation_exhaustive(weights, t, params)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use crate::solver::Swiper;
    use proptest::prelude::*;

    #[test]
    fn composition_enumeration_counts() {
        // C(4+2, 2) = 15 compositions of 4 into 3 parts.
        let mut count = 0;
        first_composition(3, 4, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 15);
    }

    #[test]
    fn whale_needs_one_ticket() {
        let w = Weights::new(vec![97, 1, 1, 1]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let best = optimal_restriction(&w, &p, 6).unwrap().unwrap();
        assert_eq!(best.total(), 1);
        assert_eq!(best.get(0), 1);
    }

    #[test]
    fn equal_weights_optimum() {
        // 4 equal parties, WR(1/3, 1/2): giving everyone 1 ticket works
        // (any S with w(S) < W/3 has <= 1 party -> 1 ticket < 2 = T/2).
        let w = Weights::new(vec![5, 5, 5, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let best = optimal_restriction(&w, &p, 8).unwrap().unwrap();
        // Optimum could be even smaller: T=1 gives one party 1 ticket; the
        // other three have weight 15 > W/3? singletons: w=5 < 20/3=6.67,
        // holder's t=1 >= 1/2*1 -> invalid. T=2: [1,1,0,0]: S={p0} light
        // (5<6.67) with t=1 >= 1 -> invalid. [2,0,0,0] same. T=3:
        // [1,1,1,0]: light singleton t=1 < 1.5 ok; pairs w=10 >= 6.67 not
        // light... S={p0,p3}: w=10 not light. So T=3 works.
        assert_eq!(best.total(), 3);
    }

    #[test]
    fn limits_enforced() {
        let w = Weights::new(vec![1; 11]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert!(optimal_restriction(&w, &p, 4).is_err());
        let w = Weights::new(vec![1; 3]).unwrap();
        assert!(optimal_restriction(&w, &p, 25).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn swiper_never_beats_optimum_and_stays_close(
            ws in proptest::collection::vec(1u64..50, 2..5),
        ) {
            let w = Weights::new(ws).unwrap();
            let p = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 2)).unwrap();
            let sol = Swiper::new().solve_restriction(&w, &p).unwrap();
            let swiper_total = u64::try_from(sol.total_tickets()).unwrap();
            if swiper_total <= 12 {
                let best = optimal_restriction(&w, &p, swiper_total)
                    .unwrap()
                    .expect("swiper's own solution is a witness");
                prop_assert!(best.total() <= sol.total_tickets());
            }
        }
    }
}
