//! 256-bit widening helpers for overflow-free rational comparisons.
//!
//! The Swiper solver follows the paper's prototype in using *exact* rational
//! arithmetic throughout (the Python reference uses `Fraction`). Party weights
//! are `u64`, totals are `u128`, and threshold rationals have `u128`
//! numerators/denominators, so cross-multiplications in comparisons can need
//! up to 256 bits. This module provides the few widening primitives required
//! so that no comparison can silently overflow.

use std::cmp::Ordering;

/// A 256-bit unsigned product represented as `hi * 2^128 + lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct U256 {
    /// Most significant 128 bits.
    pub hi: u128,
    /// Least significant 128 bits.
    pub lo: u128,
}

/// Multiplies two `u128` values into a full 256-bit result.
///
/// Splits each operand into 64-bit halves and accumulates partial products,
/// the textbook schoolbook multiplication on 64-bit limbs.
pub fn mul_u128(a: u128, b: u128) -> U256 {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a_hi, a_lo) = (a >> 64, a & MASK);
    let (b_hi, b_lo) = (b >> 64, b & MASK);

    let ll = a_lo * b_lo;
    let lh = a_lo * b_hi;
    let hl = a_hi * b_lo;
    let hh = a_hi * b_hi;

    // Sum the middle partial products and track the carry into the high part.
    let (mid, carry1) = lh.overflowing_add(hl);
    let mid_carry = if carry1 { 1u128 << 64 } else { 0 };

    let (lo, carry2) = ll.overflowing_add(mid << 64);
    let hi = hh + (mid >> 64) + mid_carry + u128::from(carry2);

    U256 { hi, lo }
}

/// Compares `a * b` with `c * d` without overflow.
pub fn cmp_mul(a: u128, b: u128, c: u128, d: u128) -> Ordering {
    mul_u128(a, b).cmp(&mul_u128(c, d))
}

/// Computes `floor((a * b) / d)` for `d != 0`, returning `None` when the
/// quotient does not fit in a `u128`.
///
/// Uses restoring long division bit-by-bit on the 256-bit product; the
/// operand sizes in this crate keep this far off any hot path.
pub fn mul_div_floor(a: u128, b: u128, d: u128) -> Option<u128> {
    assert!(d != 0, "division by zero in mul_div_floor");
    let prod = mul_u128(a, b);
    if prod.hi == 0 {
        return Some(prod.lo / d);
    }
    // The quotient fits in u128 iff prod < d * 2^128, i.e. prod.hi < d.
    if prod.hi >= d {
        return None;
    }
    let mut rem: u128 = prod.hi;
    let mut quot: u128 = 0;
    for bit in (0..128).rev() {
        // rem = rem * 2 + next bit of prod.lo; rem < d <= 2^128 - 1, so the
        // shift can carry into a 129th bit, captured before shifting.
        let carry = rem >> 127 != 0;
        let next = (rem << 1) | ((prod.lo >> bit) & 1);
        if carry || next >= d {
            rem = next.wrapping_sub(d);
            quot |= 1u128 << bit;
        } else {
            rem = next;
        }
    }
    Some(quot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_small_matches_u128() {
        let r = mul_u128(7, 9);
        assert_eq!(r, U256 { hi: 0, lo: 63 });
    }

    #[test]
    fn mul_max_operands() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let r = mul_u128(u128::MAX, u128::MAX);
        assert_eq!(r.hi, u128::MAX - 1);
        assert_eq!(r.lo, 1);
    }

    #[test]
    fn cmp_mul_orders_cross_products() {
        assert_eq!(cmp_mul(1, 3, 2, 2), Ordering::Less); // 3 < 4
        assert_eq!(cmp_mul(2, 3, 3, 2), Ordering::Equal);
        assert_eq!(cmp_mul(u128::MAX, 2, u128::MAX, 1), Ordering::Greater);
    }

    #[test]
    fn mul_div_floor_basic() {
        assert_eq!(mul_div_floor(10, 10, 3), Some(33));
        assert_eq!(mul_div_floor(u128::MAX, 2, 2), Some(u128::MAX));
        assert_eq!(mul_div_floor(u128::MAX, u128::MAX, 1), None);
    }

    #[test]
    fn mul_div_floor_large_divisor() {
        // (2^127)(2^127) / 2^127 = 2^127
        let x = 1u128 << 127;
        assert_eq!(mul_div_floor(x, x, x), Some(x));
    }

    proptest! {
        #[test]
        fn mul_matches_native_for_64bit(a in any::<u64>(), b in any::<u64>()) {
            let r = mul_u128(u128::from(a), u128::from(b));
            prop_assert_eq!(r.hi, 0);
            prop_assert_eq!(r.lo, u128::from(a) * u128::from(b));
        }

        #[test]
        fn cmp_matches_native_for_64bit(
            a in any::<u64>(), b in any::<u64>(),
            c in any::<u64>(), d in any::<u64>(),
        ) {
            let lhs = u128::from(a) * u128::from(b);
            let rhs = u128::from(c) * u128::from(d);
            prop_assert_eq!(
                cmp_mul(a.into(), b.into(), c.into(), d.into()),
                lhs.cmp(&rhs)
            );
        }

        #[test]
        fn mul_div_matches_native_for_64bit(
            a in any::<u64>(), b in any::<u64>(), d in 1u64..,
        ) {
            let expect = u128::from(a) * u128::from(b) / u128::from(d);
            prop_assert_eq!(
                mul_div_floor(a.into(), b.into(), d.into()),
                Some(expect)
            );
        }

        #[test]
        fn mul_is_commutative(a in any::<u128>(), b in any::<u128>()) {
            prop_assert_eq!(mul_u128(a, b), mul_u128(b, a));
        }

        #[test]
        fn mul_div_floor_identity(a in any::<u128>(), d in 1u128..) {
            // a * d / d == a always fits.
            prop_assert_eq!(mul_div_floor(a, d, d), Some(a));
        }
    }
}
