//! The three weight reduction problems (paper, Section 2).
//!
//! * [`WeightRestriction`] — any subset of weight `< alpha_w * W` must get
//!   `< alpha_n * T` tickets (Problem 1).
//! * [`WeightQualification`] — any subset of weight `> beta_w * W` must get
//!   `> beta_n * T` tickets (Problem 2).
//! * [`WeightSeparation`] — any subset of weight `> beta * W` must get more
//!   tickets than any subset of weight `< alpha * W` (Problem 3).
//!
//! Each parameter set knows its theoretical ticket upper bound
//! (Theorems 2.1, 2.3, 2.4) and the rounding constant `c` used by the Swiper
//! ticket-assignment family (Section 3.1 / Appendix A).

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::ratio::Ratio;

/// Largest theoretical bound the solver will attempt. Beyond this the DP
/// tables and crossing arithmetic leave the supported `u128` envelope.
pub const MAX_TICKET_BOUND: u128 = 1 << 40;

fn ceil_div(a: u128, b: u128) -> u128 {
    a / b + u128::from(!a.is_multiple_of(b))
}

fn check_proper(r: &Ratio, what: &'static str) -> Result<(), CoreError> {
    if r.is_proper() {
        Ok(())
    } else {
        Err(CoreError::ThresholdOutOfRange { what })
    }
}

fn check_bound(bound: u128) -> Result<u64, CoreError> {
    if bound > MAX_TICKET_BOUND {
        Err(CoreError::BoundTooLarge { bound })
    } else {
        Ok(bound as u64)
    }
}

/// Parameters of the Weight Restriction problem (Problem 1).
///
/// Find integer tickets `t_1..t_n` minimizing `T = sum t_i` such that every
/// subset `S` with `w(S) < alpha_w * W` receives `t(S) < alpha_n * T`.
///
/// # Examples
///
/// ```
/// use swiper_core::{Ratio, WeightRestriction};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// // Theorem 2.1: T <= ceil(aw(1-aw)/(an-aw) * n) = ceil(4n/3)
/// assert_eq!(wr.ticket_bound(9)?, 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightRestriction {
    alpha_w: Ratio,
    alpha_n: Ratio,
}

impl WeightRestriction {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ThresholdOutOfRange`] unless both thresholds lie in
    ///   the open interval `(0, 1)`.
    /// * [`CoreError::InfeasibleThresholds`] unless `alpha_w < alpha_n`
    ///   (required by Theorem 2.1 for a linear bound).
    pub fn new(alpha_w: Ratio, alpha_n: Ratio) -> Result<Self, CoreError> {
        check_proper(&alpha_w, "alpha_w must be in (0, 1)")?;
        check_proper(&alpha_n, "alpha_n must be in (0, 1)")?;
        if alpha_w >= alpha_n {
            return Err(CoreError::InfeasibleThresholds {
                what: "Weight Restriction requires alpha_w < alpha_n",
            });
        }
        Ok(WeightRestriction { alpha_w, alpha_n })
    }

    /// The weight-side threshold `alpha_w`.
    pub fn alpha_w(&self) -> Ratio {
        self.alpha_w
    }

    /// The ticket-side threshold `alpha_n`.
    pub fn alpha_n(&self) -> Ratio {
        self.alpha_n
    }

    /// The rounding constant for the `t(s, k)` family: `c = alpha_w`
    /// (Appendix A chooses the `c` minimizing the upper bound).
    pub fn family_constant(&self) -> Ratio {
        self.alpha_w
    }

    /// Theorem 2.1 upper bound:
    /// `T <= ceil( alpha_w (1 - alpha_w) / (alpha_n - alpha_w) * n )`.
    ///
    /// # Errors
    ///
    /// [`CoreError::ArithmeticOverflow`] / [`CoreError::BoundTooLarge`] when
    /// the bound leaves the supported envelope.
    pub fn ticket_bound(&self, n: u64) -> Result<u64, CoreError> {
        let (pw, qw) = (self.alpha_w.num(), self.alpha_w.den());
        let (pn, qn) = (self.alpha_n.num(), self.alpha_n.den());
        // ceil( pw*(qw-pw)*qn*n / (qw*(pn*qw - pw*qn)) )
        let num = pw
            .checked_mul(qw - pw)
            .and_then(|x| x.checked_mul(qn))
            .and_then(|x| x.checked_mul(u128::from(n)))
            .ok_or(CoreError::ArithmeticOverflow)?;
        let gap = pn
            .checked_mul(qw)
            .ok_or(CoreError::ArithmeticOverflow)?
            .checked_sub(pw.checked_mul(qn).ok_or(CoreError::ArithmeticOverflow)?)
            .expect("alpha_w < alpha_n validated at construction");
        let den = qw.checked_mul(gap).ok_or(CoreError::ArithmeticOverflow)?;
        check_bound(ceil_div(num, den))
    }
}

/// Parameters of the Weight Qualification problem (Problem 2).
///
/// Find integer tickets minimizing `T` such that every subset `S` with
/// `w(S) > beta_w * W` receives `t(S) > beta_n * T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightQualification {
    beta_w: Ratio,
    beta_n: Ratio,
}

impl WeightQualification {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ThresholdOutOfRange`] unless both thresholds lie in
    ///   `(0, 1)`.
    /// * [`CoreError::InfeasibleThresholds`] unless `beta_n < beta_w`
    ///   (Corollary 2.3).
    pub fn new(beta_w: Ratio, beta_n: Ratio) -> Result<Self, CoreError> {
        check_proper(&beta_w, "beta_w must be in (0, 1)")?;
        check_proper(&beta_n, "beta_n must be in (0, 1)")?;
        if beta_n >= beta_w {
            return Err(CoreError::InfeasibleThresholds {
                what: "Weight Qualification requires beta_n < beta_w",
            });
        }
        Ok(WeightQualification { beta_w, beta_n })
    }

    /// The weight-side threshold `beta_w`.
    pub fn beta_w(&self) -> Ratio {
        self.beta_w
    }

    /// The ticket-side threshold `beta_n`.
    pub fn beta_n(&self) -> Ratio {
        self.beta_n
    }

    /// The equivalent Weight Restriction instance
    /// `WR(1 - beta_w, 1 - beta_n)` (Theorem 2.2): a valid solution to one is
    /// a valid solution to the other.
    pub fn to_restriction(&self) -> WeightRestriction {
        WeightRestriction::new(
            self.beta_w.one_minus().expect("beta_w proper"),
            self.beta_n.one_minus().expect("beta_n proper"),
        )
        .expect("1-beta_w < 1-beta_n follows from beta_n < beta_w")
    }

    /// The rounding constant for the family: `c = 1 - beta_w`, which equals
    /// the reduced problem's `alpha_w` — the two views share one family.
    pub fn family_constant(&self) -> Ratio {
        self.beta_w.one_minus().expect("beta_w proper")
    }

    /// Corollary 2.3 upper bound:
    /// `T <= ceil( beta_w (1 - beta_w) / (beta_w - beta_n) * n )`.
    ///
    /// # Errors
    ///
    /// See [`WeightRestriction::ticket_bound`].
    pub fn ticket_bound(&self, n: u64) -> Result<u64, CoreError> {
        self.to_restriction().ticket_bound(n)
    }
}

/// Parameters of the Weight Separation problem (Problem 3).
///
/// Find integer tickets minimizing `T` such that for all subsets
/// `S1, S2` with `w(S1) < alpha * W` and `w(S2) > beta * W` it holds that
/// `t(S1) < t(S2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightSeparation {
    alpha: Ratio,
    beta: Ratio,
}

impl WeightSeparation {
    /// Creates validated parameters.
    ///
    /// # Errors
    ///
    /// * [`CoreError::ThresholdOutOfRange`] unless both thresholds lie in
    ///   `(0, 1)`.
    /// * [`CoreError::InfeasibleThresholds`] unless `alpha < beta`
    ///   (Theorem 2.4).
    pub fn new(alpha: Ratio, beta: Ratio) -> Result<Self, CoreError> {
        check_proper(&alpha, "alpha must be in (0, 1)")?;
        check_proper(&beta, "beta must be in (0, 1)")?;
        if alpha >= beta {
            return Err(CoreError::InfeasibleThresholds {
                what: "Weight Separation requires alpha < beta",
            });
        }
        Ok(WeightSeparation { alpha, beta })
    }

    /// The lower threshold `alpha`.
    pub fn alpha(&self) -> Ratio {
        self.alpha
    }

    /// The upper threshold `beta`.
    pub fn beta(&self) -> Ratio {
        self.beta
    }

    /// The rounding constant for the family: `c = (alpha + beta) / 2`
    /// (Appendix A.2 picks `gamma` so both failure bounds coincide).
    pub fn family_constant(&self) -> Ratio {
        self.alpha
            .checked_add(&self.beta)
            .and_then(|s| s.halved())
            .expect("proper thresholds cannot overflow here")
    }

    /// Theorem 2.4 upper bound:
    /// `T <= (alpha + beta)(1 - alpha) / (beta - alpha) * n`, rounded up to
    /// the next integer (any family assignment with at least this many
    /// tickets is valid; see Appendix A.2).
    ///
    /// # Errors
    ///
    /// See [`WeightRestriction::ticket_bound`].
    pub fn ticket_bound(&self, n: u64) -> Result<u64, CoreError> {
        let (pa, qa) = (self.alpha.num(), self.alpha.den());
        let (pb, qb) = (self.beta.num(), self.beta.den());
        // ceil( (pa*qb + pb*qa) * (qa - pa) * n / (qa^2 * qb * (beta-alpha)) )
        // with beta - alpha = (pb*qa - pa*qb)/(qa*qb):
        // = ceil( (pa*qb + pb*qa) * (qa - pa) * n / (qa * (pb*qa - pa*qb)) )
        let s = pa
            .checked_mul(qb)
            .and_then(|x| pb.checked_mul(qa).and_then(|y| x.checked_add(y)))
            .ok_or(CoreError::ArithmeticOverflow)?;
        let num = s
            .checked_mul(qa - pa)
            .and_then(|x| x.checked_mul(u128::from(n)))
            .ok_or(CoreError::ArithmeticOverflow)?;
        let gap = pb
            .checked_mul(qa)
            .ok_or(CoreError::ArithmeticOverflow)?
            .checked_sub(pa.checked_mul(qb).ok_or(CoreError::ArithmeticOverflow)?)
            .expect("alpha < beta validated at construction");
        let den = qa.checked_mul(gap).ok_or(CoreError::ArithmeticOverflow)?;
        check_bound(ceil_div(num, den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wr_validation() {
        assert!(WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).is_ok());
        // alpha_w >= alpha_n
        assert!(matches!(
            WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 3)),
            Err(CoreError::InfeasibleThresholds { .. })
        ));
        assert!(matches!(
            WeightRestriction::new(Ratio::of(1, 2), Ratio::of(1, 3)),
            Err(CoreError::InfeasibleThresholds { .. })
        ));
        // out of (0,1)
        assert!(WeightRestriction::new(Ratio::ZERO, Ratio::of(1, 3)).is_err());
        assert!(WeightRestriction::new(Ratio::of(1, 3), Ratio::ONE).is_err());
    }

    #[test]
    fn wr_bound_examples_from_paper() {
        // Section 5.1 example: beta_w = 1/3, beta_n = 1/4 gives m <= 8/3 n.
        // Via Theorem 2.2 this equals WR(2/3, 3/4).
        let wr = WeightRestriction::new(Ratio::of(2, 3), Ratio::of(3, 4)).unwrap();
        assert_eq!(wr.ticket_bound(3).unwrap(), 8); // 8/3 * 3
        assert_eq!(wr.ticket_bound(300).unwrap(), 800);

        // Section 5.1 second example: beta_w = 2/3, beta_n = 1/2 -> 4/3 n.
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        assert_eq!(wr.ticket_bound(300).unwrap(), 400);

        // Section 5.2: beta_w = 2/3, beta_n = 5/8 -> (2/3*1/3)/(1/24) = 16/3 n.
        let wq = WeightQualification::new(Ratio::of(2, 3), Ratio::of(5, 8)).unwrap();
        assert_eq!(wq.ticket_bound(300).unwrap(), 1600);
    }

    #[test]
    fn wr_bound_rounds_up() {
        let wr = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        // aw(1-aw)/(an-aw) = (1/4 * 3/4) / (1/12) = 9/4.
        assert_eq!(wr.ticket_bound(4).unwrap(), 9);
        assert_eq!(wr.ticket_bound(5).unwrap(), 12); // ceil(45/4) = 12
    }

    #[test]
    fn wq_reduction_matches_theorem_2_2() {
        let wq = WeightQualification::new(Ratio::of(3, 4), Ratio::of(2, 3)).unwrap();
        let wr = wq.to_restriction();
        assert_eq!(wr.alpha_w(), Ratio::of(1, 4));
        assert_eq!(wr.alpha_n(), Ratio::of(1, 3));
        assert_eq!(wq.family_constant(), wr.family_constant());
        assert_eq!(wq.ticket_bound(104).unwrap(), wr.ticket_bound(104).unwrap());
    }

    #[test]
    fn wq_validation() {
        assert!(matches!(
            WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 2)),
            Err(CoreError::InfeasibleThresholds { .. })
        ));
        assert!(WeightQualification::new(Ratio::of(1, 3), Ratio::of(1, 4)).is_ok());
    }

    #[test]
    fn ws_constant_and_bound() {
        let ws = WeightSeparation::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        assert_eq!(ws.family_constant(), Ratio::of(7, 24));
        // (a+b)(1-a)/(b-a) = (7/12)(3/4)/(1/12) = 21/4.
        assert_eq!(ws.ticket_bound(4).unwrap(), 21);
        assert_eq!(ws.ticket_bound(100).unwrap(), 525);
    }

    #[test]
    fn ws_numerator_below_one() {
        // The paper notes (alpha+beta)(1-alpha) < 1 for 0 < alpha < beta < 1,
        // so the bound constant times n stays finite; sanity check a corner.
        let ws = WeightSeparation::new(Ratio::of(2, 3), Ratio::of(3, 4)).unwrap();
        // (17/12)(1/3)/(1/12) = 17/3
        assert_eq!(ws.ticket_bound(3).unwrap(), 17);
    }

    #[test]
    fn bound_too_large_detected() {
        // Tiny gap: alpha_w = 499999/1000000, alpha_n = 500000/1000000 = 1/2.
        let wr =
            WeightRestriction::new(Ratio::of(499_999, 1_000_000), Ratio::of(1, 2)).unwrap();
        let r = wr.ticket_bound(u64::MAX / 2);
        assert!(matches!(
            r,
            Err(CoreError::BoundTooLarge { .. }) | Err(CoreError::ArithmeticOverflow)
        ));
    }

    #[test]
    fn bounds_are_linear_in_n() {
        let wr = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(3, 8)).unwrap();
        let b1 = wr.ticket_bound(1_000).unwrap();
        let b2 = wr.ticket_bound(2_000).unwrap();
        assert!(b2 <= 2 * b1 + 1);
        assert!(b2 >= 2 * b1 - 1);
    }
}
