//! Party weight vectors.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Weights of the `n` parties, indexed by party id `0..n`.
///
/// Weights are non-negative 64-bit integers. Real-valued weights (stake
/// denominated in tokens, estimated failure probabilities, ...) should be
/// quantized with [`Weights::from_floats`]; stake systems natively count in
/// integer base units, so `u64` is the natural domain. The *total* weight `W`
/// is tracked as `u128` so it cannot overflow.
///
/// # Examples
///
/// ```
/// use swiper_core::Weights;
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let w = Weights::new(vec![10, 20, 30, 40])?;
/// assert_eq!(w.total(), 100);
/// assert_eq!(w.len(), 4);
/// assert_eq!(w.get(3), 40);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Weights {
    weights: Vec<u64>,
    total: u128,
}

impl Weights {
    /// Creates a weight vector.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoParties`] when `weights` is empty.
    /// * [`CoreError::ZeroTotalWeight`] when all weights are zero — the
    ///   weight reduction problems require `W != 0`.
    pub fn new(weights: Vec<u64>) -> Result<Self, CoreError> {
        if weights.is_empty() {
            return Err(CoreError::NoParties);
        }
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        if total == 0 {
            return Err(CoreError::ZeroTotalWeight);
        }
        Ok(Weights { weights, total })
    }

    /// Quantizes real weights to `u64` by scaling so that the largest weight
    /// maps to `scale_max` (default-worthy choice: `u32::MAX`), preserving
    /// proportions to within one unit.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NoParties`] for empty input.
    /// * [`CoreError::ZeroTotalWeight`] when no weight is positive/finite.
    pub fn from_floats(weights: &[f64], scale_max: u64) -> Result<Self, CoreError> {
        if weights.is_empty() {
            return Err(CoreError::NoParties);
        }
        let max =
            weights.iter().copied().filter(|w| w.is_finite() && *w > 0.0).fold(0.0, f64::max);
        if max <= 0.0 || scale_max == 0 {
            return Err(CoreError::ZeroTotalWeight);
        }
        let quantized: Vec<u64> = weights
            .iter()
            .map(|&w| {
                if !w.is_finite() || w <= 0.0 {
                    0
                } else {
                    // Round to nearest; clamp in case of FP edge effects.
                    ((w / max * scale_max as f64).round() as u64).min(scale_max)
                }
            })
            .collect();
        Weights::new(quantized)
    }

    /// Number of parties `n`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when there are no parties (never constructible; kept for API
    /// completeness alongside [`Weights::len`]).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Weight of party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> u64 {
        self.weights[i]
    }

    /// Total weight `W`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Largest single weight.
    pub fn max(&self) -> u64 {
        *self.weights.iter().max().expect("non-empty by construction")
    }

    /// Index of a party holding the largest weight (first such party).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &w) in self.weights.iter().enumerate() {
            if w > self.weights[best] {
                best = i;
            }
        }
        best
    }

    /// Borrow the raw weights.
    pub fn as_slice(&self) -> &[u64] {
        &self.weights
    }

    /// 128-bit FNV-1a fingerprint of the weight vector — the compact
    /// handle epoch machinery uses to detect stake drift (see
    /// `EpochEvent::prev_weights_fingerprint`). Deterministic across
    /// processes and replicas; guards against stale inputs, not
    /// adversarial ones.
    pub fn fingerprint(&self) -> u128 {
        crate::assignment::tickets_fingerprint(&self.weights)
    }

    /// Iterate over `(party, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.weights.iter().copied().enumerate()
    }

    /// Sum of the weights of the given subset of parties.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset_weight(&self, subset: &[usize]) -> u128 {
        subset.iter().map(|&i| u128::from(self.weights[i])).sum()
    }
}

impl AsRef<[u64]> for Weights {
    fn as_ref(&self) -> &[u64] {
        &self.weights
    }
}

impl TryFrom<Vec<u64>> for Weights {
    type Error = CoreError;

    fn try_from(v: Vec<u64>) -> Result<Self, Self::Error> {
        Weights::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero() {
        assert!(matches!(Weights::new(vec![]), Err(CoreError::NoParties)));
        assert!(matches!(Weights::new(vec![0, 0]), Err(CoreError::ZeroTotalWeight)));
    }

    #[test]
    fn total_uses_u128() {
        let w = Weights::new(vec![u64::MAX, u64::MAX]).unwrap();
        assert_eq!(w.total(), 2 * u128::from(u64::MAX));
    }

    #[test]
    fn argmax_returns_first_maximum() {
        let w = Weights::new(vec![3, 7, 7, 1]).unwrap();
        assert_eq!(w.argmax(), 1);
        assert_eq!(w.max(), 7);
    }

    #[test]
    fn subset_weight_sums() {
        let w = Weights::new(vec![1, 2, 3, 4]).unwrap();
        assert_eq!(w.subset_weight(&[0, 3]), 5);
        assert_eq!(w.subset_weight(&[]), 0);
    }

    #[test]
    fn from_floats_preserves_proportions() {
        let w = Weights::from_floats(&[0.5, 1.0, 0.25], 1000).unwrap();
        assert_eq!(w.as_slice(), &[500, 1000, 250]);
    }

    #[test]
    fn from_floats_handles_junk() {
        let w = Weights::from_floats(&[f64::NAN, 1.0, -3.0, f64::INFINITY], 10).unwrap();
        assert_eq!(w.as_slice(), &[0, 10, 0, 0]);
        assert!(Weights::from_floats(&[0.0, -1.0], 10).is_err());
        assert!(Weights::from_floats(&[], 10).is_err());
    }
}
