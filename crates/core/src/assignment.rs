//! Ticket assignments — the output of weight reduction.

use serde::{Deserialize, Serialize};

/// An integer ticket assignment `t_1..t_n` produced by a weight reduction
/// solver; "tickets" are the paper's name for the small integer weights.
///
/// # Examples
///
/// ```
/// use swiper_core::TicketAssignment;
///
/// let t = TicketAssignment::new(vec![2, 0, 1, 1]);
/// assert_eq!(t.total(), 4);
/// assert_eq!(t.holders(), 3);
/// assert_eq!(t.max_tickets(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketAssignment {
    tickets: Vec<u64>,
    total: u128,
}

impl TicketAssignment {
    /// Wraps a raw ticket vector.
    pub fn new(tickets: Vec<u64>) -> Self {
        let total = tickets.iter().map(|&t| u128::from(t)).sum();
        TicketAssignment { tickets, total }
    }

    /// Wraps a ticket vector whose total the caller already knows — the
    /// incremental family cursor maintains the total as it splices ticket
    /// deltas, so re-summing a million-entry vector per probe would undo
    /// the O(Δ) advance. Debug builds still verify the claimed total.
    pub(crate) fn from_parts(tickets: Vec<u64>, total: u128) -> Self {
        debug_assert_eq!(tickets.iter().map(|&t| u128::from(t)).sum::<u128>(), total);
        TicketAssignment { tickets, total }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// True when there are no parties.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Tickets of party `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> u64 {
        self.tickets[i]
    }

    /// Total number of tickets `T`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Number of parties holding at least one ticket (the paper's
    /// "# Holders" metric in Section 7).
    pub fn holders(&self) -> usize {
        self.tickets.iter().filter(|&&t| t > 0).count()
    }

    /// Largest number of tickets held by a single party ("Max tickets").
    pub fn max_tickets(&self) -> u64 {
        self.tickets.iter().copied().max().unwrap_or(0)
    }

    /// Borrow the raw tickets.
    pub fn as_slice(&self) -> &[u64] {
        &self.tickets
    }

    /// Iterate over `(party, tickets)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.tickets.iter().copied().enumerate()
    }

    /// Sum of tickets over a subset of parties.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset_tickets(&self, subset: &[usize]) -> u128 {
        subset.iter().map(|&i| u128::from(self.tickets[i])).sum()
    }

    /// Consumes the assignment, returning the raw ticket vector.
    pub fn into_inner(self) -> Vec<u64> {
        self.tickets
    }

    /// 128-bit FNV-1a fingerprint of the ticket vector. Deterministic
    /// across processes and replicas, so epoch machinery can key derived
    /// state (threshold-key seeds, verdict caches, delta bases) on the
    /// assignment itself. Guards against *stale or misrouted* inputs, not
    /// adversarial ones: assignments are consensus-agreed values every
    /// honest replica derives identically.
    pub fn fingerprint(&self) -> u128 {
        tickets_fingerprint(&self.tickets)
    }
}

/// 128-bit FNV-1a over a raw ticket vector (see
/// [`TicketAssignment::fingerprint`]).
pub(crate) fn tickets_fingerprint(tickets: &[u64]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &t in tickets {
        for byte in t.to_le_bytes() {
            h ^= u128::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

impl AsRef<[u64]> for TicketAssignment {
    fn as_ref(&self) -> &[u64] {
        &self.tickets
    }
}

impl FromIterator<u64> for TicketAssignment {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        TicketAssignment::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let t = TicketAssignment::new(vec![0, 0, 5, 2]);
        assert_eq!(t.total(), 7);
        assert_eq!(t.holders(), 2);
        assert_eq!(t.max_tickets(), 5);
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(2), 5);
    }

    #[test]
    fn empty_assignment() {
        let t = TicketAssignment::new(vec![]);
        assert_eq!(t.total(), 0);
        assert_eq!(t.holders(), 0);
        assert_eq!(t.max_tickets(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn subset_and_iter() {
        let t: TicketAssignment = [1u64, 2, 3].into_iter().collect();
        assert_eq!(t.subset_tickets(&[0, 2]), 4);
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(t.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn total_cannot_overflow_u64_sums() {
        let t = TicketAssignment::new(vec![u64::MAX, u64::MAX]);
        assert_eq!(t.total(), 2 * u128::from(u64::MAX));
    }
}
