//! The weight-bearing epoch reconfiguration event.
//!
//! A [`TicketDelta`] alone is only half a reconfiguration: it renumbers
//! identities but says nothing about *stake*, so a consumer that re-keys
//! its trackers from the delta keeps weighing votes with whatever weight
//! vector it was constructed against. [`EpochEvent`] is the full unit of
//! epoch change the protocols layer consumes — one value carrying
//!
//! * the **epoch number** the event transitions into,
//! * the [`TicketDelta`] between the two epochs' ticket assignments,
//! * the **new per-party weight vector** (weights are the live input of a
//!   weighted protocol — quorums must tally under *this* epoch's stake),
//! * a **fingerprinted handle** to the previous weight vector, so a
//!   consumer can cheaply detect stake drift (and a driver bug that skips
//!   an epoch shows up as a fingerprint mismatch), and
//! * a deterministic **rekey seed**: consumers that hold dealt
//!   cryptographic material re-derive it from
//!   `rekey_seed ⊕ fingerprint(new assignment)` when the tickets backing
//!   it moved, so every replica — and any teardown-rebuild twin — deals
//!   identical fresh keys without coordination.
//!
//! Producers ([`Reconfigurator`] in `swiper-weights`, the epoch-schedule
//! simulation drivers in `swiper-net`) emit `EpochEvent`s; consumers
//! (`Protocol::on_reconfigure` implementors) splice them in. No public
//! reconfiguration API accepts a bare `&TicketDelta` anymore.
//!
//! [`Reconfigurator`]: ../../swiper_weights/epoch/struct.Reconfigurator.html

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::virtual_users::TicketDelta;
use crate::weights::Weights;

/// One epoch reconfiguration: the ticket delta *and* the stake that goes
/// with it. The module docs above explain the role of each field.
///
/// # Examples
///
/// ```
/// use swiper_core::{EpochEvent, TicketAssignment, TicketDelta, Weights};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let old_w = Weights::new(vec![50, 30, 20])?;
/// let new_w = Weights::new(vec![10, 30, 20])?; // the whale collapsed
/// let old_t = TicketAssignment::new(vec![2, 1, 1]);
/// let new_t = TicketAssignment::new(vec![1, 1, 1]);
/// let delta = TicketDelta::between(&old_t, &new_t)?;
/// let event = EpochEvent::new(1, delta, &old_w, new_w, 7)?;
/// assert_eq!(event.epoch(), 1);
/// assert!(event.weights_changed());
/// assert_eq!(event.weights().get(0), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochEvent {
    epoch: u64,
    delta: TicketDelta,
    weights: Weights,
    prev_weights_fingerprint: u128,
    rekey_seed: u64,
}

impl EpochEvent {
    /// Builds the event transitioning into `epoch`: `delta` diffs the two
    /// epochs' ticket assignments, `prev_weights`/`weights` are the old
    /// and new per-party stake vectors, and `rekey_seed` is the
    /// deterministic seed consumers fold with the new assignment's
    /// fingerprint when re-dealing epoch-pinned cryptographic material.
    ///
    /// # Errors
    ///
    /// [`CoreError::PartyCountChanged`] when either weight vector covers
    /// a different party count than the delta — party sets are fixed
    /// across epochs, so the three must agree.
    pub fn new(
        epoch: u64,
        delta: TicketDelta,
        prev_weights: &Weights,
        weights: Weights,
        rekey_seed: u64,
    ) -> Result<Self, CoreError> {
        for found in [prev_weights.len(), weights.len()] {
            if found != delta.parties() {
                return Err(CoreError::PartyCountChanged { expected: delta.parties(), found });
            }
        }
        Ok(EpochEvent {
            epoch,
            delta,
            weights,
            prev_weights_fingerprint: prev_weights.fingerprint(),
            rekey_seed,
        })
    }

    /// The epoch this event transitions into.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The ticket diff between the previous and this epoch.
    pub fn delta(&self) -> &TicketDelta {
        &self.delta
    }

    /// This epoch's per-party weight vector — the stake quorums must
    /// tally under from the moment the event is consumed.
    pub fn weights(&self) -> &Weights {
        &self.weights
    }

    /// Fingerprint of the previous epoch's weight vector (the handle a
    /// consumer compares against its own to detect a skipped epoch).
    pub fn prev_weights_fingerprint(&self) -> u128 {
        self.prev_weights_fingerprint
    }

    /// Whether the stake actually moved between the two epochs.
    pub fn weights_changed(&self) -> bool {
        self.weights.fingerprint() != self.prev_weights_fingerprint
    }

    /// The deterministic re-deal seed. Consumers holding dealt material
    /// (threshold coin keys, beacon shares) combine it with the new
    /// assignment's fingerprint so all replicas re-deal identically.
    pub fn rekey_seed(&self) -> u64 {
        self.rekey_seed
    }

    /// Refreshes a consumer's stored weight vector from this event,
    /// returning whether it was replaced. Party sets are fixed across
    /// epochs, so a length mismatch marks a mis-addressed event: the
    /// vector is left untouched and `false` is returned (consumers decide
    /// whether that is assert-worthy). The one shared implementation of
    /// the guard every `on_reconfigure` needs.
    #[must_use]
    pub fn refresh_weights(&self, weights: &mut Weights) -> bool {
        if self.weights.len() != weights.len() {
            return false;
        }
        *weights = self.weights.clone();
        true
    }

    /// Folds the rekey seed with a 128-bit assignment fingerprint into a
    /// 64-bit RNG seed — the shared recipe for deterministic re-deals
    /// (every consumer using it derives the same keys for the same epoch).
    pub fn fold_rekey(&self, fingerprint: u128) -> u64 {
        self.rekey_seed ^ (fingerprint ^ (fingerprint >> 64)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::TicketAssignment;

    fn delta(old: &[u64], new: &[u64]) -> TicketDelta {
        TicketDelta::between(
            &TicketAssignment::new(old.to_vec()),
            &TicketAssignment::new(new.to_vec()),
        )
        .unwrap()
    }

    #[test]
    fn carries_epoch_delta_weights_and_seed() {
        let old_w = Weights::new(vec![5, 5, 5]).unwrap();
        let new_w = Weights::new(vec![5, 9, 5]).unwrap();
        let event =
            EpochEvent::new(3, delta(&[1, 1, 1], &[1, 2, 1]), &old_w, new_w.clone(), 42)
                .unwrap();
        assert_eq!(event.epoch(), 3);
        assert_eq!(event.delta().changes().len(), 1);
        assert_eq!(event.weights(), &new_w);
        assert_eq!(event.prev_weights_fingerprint(), old_w.fingerprint());
        assert!(event.weights_changed());
        assert_eq!(event.rekey_seed(), 42);
    }

    #[test]
    fn unchanged_stake_is_detected_via_the_fingerprint() {
        let w = Weights::new(vec![7, 3]).unwrap();
        let event = EpochEvent::new(1, delta(&[1, 1], &[2, 1]), &w, w.clone(), 0).unwrap();
        assert!(!event.weights_changed(), "tickets moved but stake did not");
    }

    #[test]
    fn rejects_party_count_mismatches() {
        let w3 = Weights::new(vec![1, 1, 1]).unwrap();
        let w2 = Weights::new(vec![1, 1]).unwrap();
        assert_eq!(
            EpochEvent::new(1, delta(&[1, 1], &[2, 1]), &w2, w3.clone(), 0),
            Err(CoreError::PartyCountChanged { expected: 2, found: 3 })
        );
        assert_eq!(
            EpochEvent::new(1, delta(&[1, 1], &[2, 1]), &w3, w2, 0),
            Err(CoreError::PartyCountChanged { expected: 2, found: 3 })
        );
    }

    #[test]
    fn refresh_weights_guards_party_count() {
        let prev = Weights::new(vec![5, 5]).unwrap();
        let event = EpochEvent::new(
            1,
            delta(&[1, 1], &[2, 1]),
            &prev,
            Weights::new(vec![9, 5]).unwrap(),
            0,
        )
        .unwrap();
        let mut mine = prev.clone();
        assert!(event.refresh_weights(&mut mine));
        assert_eq!(mine.get(0), 9);
        let mut other = Weights::new(vec![1, 1, 1]).unwrap();
        assert!(!event.refresh_weights(&mut other), "mis-addressed event is ignored");
        assert_eq!(other.len(), 3);
    }

    #[test]
    fn fold_rekey_is_deterministic_and_fingerprint_sensitive() {
        let w = Weights::new(vec![4, 4]).unwrap();
        let event = EpochEvent::new(1, delta(&[1, 1], &[1, 2]), &w, w.clone(), 99).unwrap();
        let fp_a = TicketAssignment::new(vec![1, 2]).fingerprint();
        let fp_b = TicketAssignment::new(vec![2, 1]).fingerprint();
        assert_eq!(event.fold_rekey(fp_a), event.fold_rekey(fp_a));
        assert_ne!(event.fold_rekey(fp_a), event.fold_rekey(fp_b));
    }
}
