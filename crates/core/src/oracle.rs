//! Pluggable validity oracles for the Swiper solver.
//!
//! The solver's binary search (paper, Section 3) needs exactly one
//! judgement per candidate family member: *is this assignment valid for
//! the problem instance?* This module isolates that judgement behind the
//! [`ValidityOracle`] trait so checking regimes can be swapped without
//! touching the search — the seam that later enables verdict caching,
//! incremental re-solve on weight deltas and data-parallel sweeps.
//!
//! Two implementations mirror the prototype's modes:
//!
//! * [`FullOracle`] — the three-valued quick test (quasilinear bounds)
//!   with the exact `O(n·T)` knapsack DP only on "uncertain" verdicts.
//!   Scratch state (the ratio-sorted prefix sums of
//!   [`knapsack::SortedItems`], the DP table, the item buffer) is
//!   memoized across [`ValidityOracle::check`] calls instead of being
//!   rebuilt per candidate.
//! * [`LinearOracle`] — only the conservative (fractional upper) bound:
//!   never falsely accepts, so solutions remain valid, but may settle for
//!   more tickets. `~O(n log n)` per check, no DP ever.
//!
//! Both produce *identical verdicts* to the pre-oracle cascade in
//! `solver.rs`; the oracle-equivalence proptests in this module's tests and
//! in `solver.rs` pin that down.
//!
//! A third implementation is a *decorator*: [`CachingOracle`] wraps any
//! oracle and memoizes `(family member, params) → verdict` under a
//! fingerprint of the member's weight/ticket multiset. Re-solves over
//! shared weight vectors — per-epoch reconfiguration, settings grids,
//! incremental-vs-cold verification passes — answer repeated checks from
//! the cache without touching the knapsack machinery at all.

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::knapsack::{self, Item, SortedItems};
use crate::problems::{WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::solver::SolveStats;
use crate::verify::{strict_capacity, ticket_target};
use crate::weights::Weights;

/// An oracle's judgement of one family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The assignment satisfies the problem's property.
    Valid,
    /// The assignment violates the property (or the oracle cannot certify
    /// it — conservative oracles treat "unknown" as invalid).
    Invalid,
}

/// One candidate of the `t(s, k)` family, as presented to an oracle.
#[derive(Debug, Clone, Copy)]
pub struct FamilyMember<'a> {
    /// The instance's party weights.
    pub weights: &'a Weights,
    /// The candidate ticket assignment.
    pub tickets: &'a TicketAssignment,
    /// Total tickets of the candidate (`tickets.total()`, pre-narrowed).
    pub total: u64,
}

/// Problem-shape parameters of a validity check, fixed for a whole solve.
///
/// Weight Qualification reduces to Weight Restriction (Theorem 2.2), so two
/// shapes cover all three problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckParams {
    /// Weight Restriction: no subset under `capacity` total weight may
    /// reach `ceil(alpha_n * T)` tickets.
    Restriction {
        /// Largest subset weight strictly below `alpha_w * W`.
        capacity: u128,
        /// Ticket-fraction threshold; the per-candidate target is
        /// `ceil(alpha_n * total)`.
        alpha_n: Ratio,
    },
    /// Weight Separation: max tickets under `cap_low` plus max tickets
    /// under `cap_high` must stay below the candidate total.
    Separation {
        /// Largest subset weight strictly below `alpha * W`.
        cap_low: u128,
        /// Largest subset weight strictly below `(1 - beta) * W`.
        cap_high: u128,
    },
}

impl CheckParams {
    /// Check parameters for a Weight Restriction instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computation.
    pub fn restriction(
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Self, CoreError> {
        Ok(CheckParams::Restriction {
            capacity: strict_capacity(params.alpha_w(), weights.total())?,
            alpha_n: params.alpha_n(),
        })
    }

    /// Check parameters for a Weight Separation instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computations.
    pub fn separation(weights: &Weights, params: &WeightSeparation) -> Result<Self, CoreError> {
        Ok(CheckParams::Separation {
            cap_low: strict_capacity(params.alpha(), weights.total())?,
            cap_high: strict_capacity(params.beta().one_minus()?, weights.total())?,
        })
    }
}

/// A validity-checking regime the solver's binary search drives.
///
/// # Contract
///
/// * `check` must never return [`Verdict::Valid`] for an invalid member
///   (soundness); returning [`Verdict::Invalid`] for a valid member is
///   allowed (conservatism) **as long as** the theoretical-bound member is
///   still judged valid, or the search's bootstrapping fallback would break.
///   Exact oracles additionally make the search land on a local minimum.
/// * The searched predicate "member with total `T` is valid" is *mostly*
///   monotone along the family but **not guaranteed to flip exactly
///   once**: real stake distributions exhibit isolated dips (`V.VVV`
///   patterns — a valid member just below an invalid one), so the family
///   can hold several local minima. Any bracketing search with `lo`
///   invalid / `hi` valid lands on *a* local minimum — which is all
///   Appendix A needs for the ticket bounds — but differently-seeded
///   brackets (e.g. a warm-started epoch re-solve) may land on different
///   ones.
/// * `take_stats` returns the counters accumulated since the previous call
///   and resets them; the search drains once per solve (on errors too), so
///   a shared oracle instance yields per-solve stats for free. Oracles
///   report only how checks were *settled* (`settled_by_*`,
///   `dp_invocations`); the search-shaped counters (`candidates_checked`,
///   `settled_by_theorem`) are owned and filled by the driver.
pub trait ValidityOracle {
    /// Judges one family member under the given check parameters.
    ///
    /// # Errors
    ///
    /// Implementations propagate arithmetic-envelope errors.
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError>;

    /// Drains the counters accumulated since the last call.
    fn take_stats(&mut self) -> SolveStats;
}

/// Shared per-candidate preparation: the knapsack item view of a member.
fn fill_items(buf: &mut Vec<Item>, member: &FamilyMember<'_>) {
    buf.clear();
    buf.extend(
        member
            .weights
            .as_slice()
            .iter()
            .zip(member.tickets.as_slice())
            .map(|(&weight, &profit)| Item { profit, weight }),
    );
}

/// The per-candidate ticket target for a Restriction-shaped check, already
/// compared against `total`: `None` means the target exceeds the total and
/// the member is trivially valid.
fn restriction_target(alpha_n: Ratio, total: u64) -> Result<Option<u64>, CoreError> {
    let target = ticket_target(alpha_n, u128::from(total))?;
    if target > u128::from(total) {
        return Ok(None);
    }
    Ok(Some(u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?))
}

/// Exact oracle: quick test first, the knapsack DP only on "uncertain".
///
/// Memoizes its working state across checks — the item buffer, the
/// ratio-sorted prefix sums ([`SortedItems`]) and the DP table
/// ([`knapsack::DpScratch`]) are allocated once per oracle and recycled
/// through the entire binary search (and, via [`crate::Swiper::solve_many`],
/// across instances of a sweep).
#[derive(Debug, Default, Clone)]
pub struct FullOracle {
    items: Vec<Item>,
    sorted: SortedItems,
    dp: knapsack::DpScratch,
    stats: SolveStats,
}

impl FullOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        FullOracle::default()
    }
}

impl ValidityOracle for FullOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        if member.total == 0 {
            return Ok(Verdict::Invalid);
        }
        fill_items(&mut self.items, member);
        self.sorted.rebuild(&self.items);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok(Verdict::Valid);
                };
                // Conservative bound: certainly-unreachable target means valid.
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                if self.sorted.greedy_lower_bound_reaches(capacity, target) {
                    self.stats.settled_by_lower_bound += 1;
                    return Ok(Verdict::Invalid);
                }
                self.stats.dp_invocations += 1;
                let reached =
                    knapsack::max_profit_dp_with(&mut self.dp, &self.items, capacity, target)
                        >= target;
                Ok(if reached { Verdict::Invalid } else { Verdict::Valid })
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let total = u128::from(member.total);
                // Conservative: floor(LP bound) on both sides still summing
                // below total certifies validity (a + b < T <=> max-light <
                // min-heavy).
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < total {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                let a_lb = self.sorted.greedy_lower_bound(cap_low);
                let b_lb = self.sorted.greedy_lower_bound(cap_high);
                if a_lb + b_lb >= total {
                    self.stats.settled_by_lower_bound += 1;
                    return Ok(Verdict::Invalid);
                }
                self.stats.dp_invocations += 1;
                let a = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_low,
                    member.total,
                ));
                let b = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_high,
                    member.total,
                ));
                Ok(if a + b < total { Verdict::Valid } else { Verdict::Invalid })
            }
        }
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

/// Conservative oracle: the fractional upper bound only (the prototype's
/// `--linear` flag). Never falsely accepts, never runs the DP.
#[derive(Debug, Default, Clone)]
pub struct LinearOracle {
    items: Vec<Item>,
    sorted: SortedItems,
    stats: SolveStats,
}

impl LinearOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        LinearOracle::default()
    }
}

impl ValidityOracle for LinearOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        if member.total == 0 {
            return Ok(Verdict::Invalid);
        }
        fill_items(&mut self.items, member);
        self.sorted.rebuild(&self.items);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok(Verdict::Valid);
                };
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                // Only the conservative test is allowed: treat as invalid.
                Ok(Verdict::Invalid)
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < u128::from(member.total) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                Ok(Verdict::Invalid)
            }
        }
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

/// Memoizing decorator: `(family member, params) → verdict`, keyed by a
/// 128-bit fingerprint of the member's weight/ticket vector and total
/// (see [`CachingOracle::new`] for the soundness argument).
///
/// The fingerprint is two independent SipHash lanes keyed by per-oracle
/// [`std::collections::hash_map::RandomState`]s drawn at construction.
/// Weight snapshots are attacker-influenceable inputs, and an unkeyed
/// fingerprint (FNV and friends) would let crafted colliding vectors
/// poison the cache with a wrong verdict; with process-random keys a
/// collision cannot be computed from the outside, and an *accidental*
/// 128-bit collision stays negligible (~2^-60 even at billions of
/// entries). Fingerprints differ across processes — irrelevant, the cache
/// is process-local; the verdicts it stores are deterministic.
///
/// Hits and misses drain into [`SolveStats::cache_hits`] /
/// [`SolveStats::cache_misses`] alongside the inner oracle's settlement
/// counters, so sweeps can report hit rates per solve with no extra
/// plumbing. The cache itself is *not* drained per solve — reuse across
/// solves (and epochs) is the whole point; call [`CachingOracle::clear`]
/// to reset it, or rely on the [`CachingOracle::with_max_entries`] bound.
///
/// # Examples
///
/// ```
/// use swiper_core::{CachingOracle, FullOracle, Ratio, Swiper, Weights, WeightRestriction};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let weights = Weights::new(vec![100, 50, 20, 10, 5, 5, 5, 5])?;
/// let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// let mut oracle = CachingOracle::new(FullOracle::new());
/// let solver = Swiper::new();
/// let first = solver.solve_restriction_with(&mut oracle, &weights, &params)?;
/// let again = solver.solve_restriction_with(&mut oracle, &weights, &params)?;
/// assert_eq!(first.assignment, again.assignment);
/// // The second identical solve is answered entirely from the cache.
/// assert_eq!(again.stats.cache_misses, 0);
/// assert_eq!(again.stats.cache_hits, again.stats.candidates_checked);
/// assert_eq!(again.stats.dp_invocations, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CachingOracle<O> {
    inner: O,
    cache: std::collections::HashMap<(u128, CheckParams), Verdict>,
    /// The two SipHash key pairs behind the member fingerprint; cloning an
    /// oracle keeps them, so clones share a key space (and could share
    /// entries), while independently constructed oracles do not.
    lanes: (std::collections::hash_map::RandomState, std::collections::hash_map::RandomState),
    max_entries: usize,
    hits: u64,
    misses: u64,
}

impl<O> CachingOracle<O> {
    /// Default bound on cached verdicts; the cache is wholesale-cleared
    /// when an insert would exceed it (epoch workloads churn keys, so an
    /// occasional cold restart beats per-entry eviction bookkeeping).
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 20;

    /// Wraps `inner` with an empty cache.
    ///
    /// Soundness: a verdict depends only on the `(weight, ticket)` item
    /// multiset, the member total and the check parameters — exactly what
    /// the key covers — so a hit returns what the inner oracle *would*
    /// return, and the decorated oracle inherits the inner oracle's
    /// contract (exactness included) verbatim.
    pub fn new(inner: O) -> Self {
        CachingOracle {
            inner,
            cache: std::collections::HashMap::new(),
            lanes: Default::default(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            hits: 0,
            misses: 0,
        }
    }

    /// The keyed 128-bit member fingerprint (two independent SipHash
    /// lanes); see the type docs for why the keys matter.
    fn member_fingerprint(&self, member: &FamilyMember<'_>) -> u128 {
        use std::hash::{BuildHasher, Hasher};
        let mut lo = self.lanes.0.build_hasher();
        let mut hi = self.lanes.1.build_hasher();
        let mut eat = |v: u64| {
            lo.write_u64(v);
            hi.write_u64(v);
        };
        eat(member.total);
        eat(member.weights.len() as u64);
        for (&w, &t) in member.weights.as_slice().iter().zip(member.tickets.as_slice()) {
            eat(w);
            eat(t);
        }
        (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
    }

    /// Sets the cache-size bound (`0` disables caching entirely).
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drops all cached verdicts (counters are unaffected; they drain
    /// through [`ValidityOracle::take_stats`]).
    pub fn clear(&mut self) {
        self.cache.clear();
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: ValidityOracle> ValidityOracle for CachingOracle<O> {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        let key = (self.member_fingerprint(member), *params);
        if let Some(&verdict) = self.cache.get(&key) {
            self.hits += 1;
            return Ok(verdict);
        }
        let verdict = self.inner.check(member, params)?;
        self.misses += 1;
        if self.max_entries > 0 {
            if self.cache.len() >= self.max_entries {
                self.cache.clear();
            }
            self.cache.insert(key, verdict);
        }
        Ok(verdict)
    }

    fn take_stats(&mut self) -> SolveStats {
        let mut stats = self.inner.take_stats();
        stats.cache_hits += std::mem::take(&mut self.hits);
        stats.cache_misses += std::mem::take(&mut self.misses);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::WeightRestriction;

    fn member_for<'a>(weights: &'a Weights, tickets: &'a TicketAssignment) -> FamilyMember<'a> {
        let total = u64::try_from(tickets.total()).unwrap();
        FamilyMember { weights, tickets, total }
    }

    #[test]
    fn zero_total_is_invalid_for_both_oracles() {
        let w = Weights::new(vec![5, 3, 2]).unwrap();
        let t = TicketAssignment::new(vec![0, 0, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let member = member_for(&w, &t);
        assert_eq!(FullOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
        assert_eq!(LinearOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
    }

    #[test]
    fn linear_never_accepts_what_full_rejects() {
        // Conservatism: Linear's Valid verdicts are a subset of Full's.
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut full = FullOracle::new();
        let mut linear = LinearOracle::new();
        for total in 1u64..=12 {
            let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
            let t = fam.assignment_with_total(total).unwrap();
            let member = member_for(&w, &t);
            let fv = full.check(&member, &params).unwrap();
            let lv = linear.check(&member, &params).unwrap();
            if lv == Verdict::Valid {
                assert_eq!(fv, Verdict::Valid, "linear accepted what full rejects at {total}");
            }
        }
    }

    #[test]
    fn caching_oracle_hits_on_repeats_and_matches_inner() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut plain = FullOracle::new();
        let mut cached = CachingOracle::new(FullOracle::new());
        for round in 0..2 {
            for total in 1u64..=10 {
                let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
                let t = fam.assignment_with_total(total).unwrap();
                let member = member_for(&w, &t);
                let expect = plain.check(&member, &params).unwrap();
                assert_eq!(cached.check(&member, &params).unwrap(), expect, "round {round}");
            }
        }
        let stats = cached.take_stats();
        assert_eq!(stats.cache_misses, 10, "first round fills the cache");
        assert_eq!(stats.cache_hits, 10, "second round is answered from it");
        assert_eq!(cached.len(), 10);
    }

    #[test]
    fn caching_oracle_distinguishes_params_and_members() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let member = member_for(&w, &t);
        let pa = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let pb = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let mut cached = CachingOracle::new(FullOracle::new());
        cached.check(&member, &CheckParams::restriction(&w, &pa).unwrap()).unwrap();
        cached.check(&member, &CheckParams::restriction(&w, &pb).unwrap()).unwrap();
        // Same tickets under different weights must also be distinct keys.
        let w2 = Weights::new(vec![40, 25, 20, 10, 6]).unwrap();
        let member2 = member_for(&w2, &t);
        cached.check(&member2, &CheckParams::restriction(&w2, &pa).unwrap()).unwrap();
        let stats = cached.take_stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 3);
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn caching_oracle_respects_max_entries() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut cached = CachingOracle::new(FullOracle::new()).with_max_entries(0);
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let member = member_for(&w, &t);
        cached.check(&member, &params).unwrap();
        cached.check(&member, &params).unwrap();
        assert!(cached.is_empty(), "max_entries == 0 disables caching");
        assert_eq!(cached.take_stats().cache_misses, 2);

        let mut small = CachingOracle::new(FullOracle::new()).with_max_entries(2);
        for total in 1u64..=5 {
            let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
            let t = fam.assignment_with_total(total).unwrap();
            small.check(&member_for(&w, &t), &params).unwrap();
        }
        assert!(small.len() <= 2, "cache stays bounded: {}", small.len());
    }

    #[test]
    fn take_stats_drains() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut oracle = FullOracle::new();
        oracle.check(&member_for(&w, &t), &params).unwrap();
        let stats = oracle.take_stats();
        // The driver owns candidates_checked; the oracle reports only how
        // the check was settled.
        assert_eq!(stats.candidates_checked, 0);
        let settled =
            stats.settled_by_upper_bound + stats.settled_by_lower_bound + stats.dp_invocations;
        assert_eq!(settled, 1);
        assert_eq!(oracle.take_stats(), SolveStats::default());
    }
}
