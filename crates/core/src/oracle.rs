//! Pluggable validity oracles for the Swiper solver.
//!
//! The solver's binary search (paper, Section 3) needs exactly one
//! judgement per candidate family member: *is this assignment valid for
//! the problem instance?* This module isolates that judgement behind the
//! [`ValidityOracle`] trait so checking regimes can be swapped without
//! touching the search — the seam that later enables verdict caching,
//! incremental re-solve on weight deltas and data-parallel sweeps.
//!
//! Two implementations mirror the prototype's modes:
//!
//! * [`FullOracle`] — the three-valued quick test (quasilinear bounds)
//!   with the exact `O(n·T)` knapsack DP only on "uncertain" verdicts.
//!   Scratch state (the ratio-sorted prefix sums of
//!   [`knapsack::SortedItems`], the DP table, the item buffer) is
//!   memoized across [`ValidityOracle::check`] calls instead of being
//!   rebuilt per candidate.
//! * [`LinearOracle`] — only the conservative (fractional upper) bound:
//!   never falsely accepts, so solutions remain valid, but may settle for
//!   more tickets. `~O(n log n)` per check, no DP ever.
//!
//! Both produce *identical verdicts* to the pre-oracle cascade in
//! `solver.rs`; the oracle-equivalence proptests in this module's tests and
//! in `solver.rs` pin that down.
//!
//! A third implementation is a *decorator*: [`CachingOracle`] wraps any
//! oracle and memoizes `(family member, params) → verdict` under a
//! fingerprint of the member's weight/ticket multiset. Re-solves over
//! shared weight vectors — per-epoch reconfiguration, settings grids,
//! incremental-vs-cold verification passes — answer repeated checks from
//! the cache without touching the knapsack machinery at all.
//!
//! ## Delta-stable verdict certificates
//!
//! Exact-fingerprint hits only fire when a member recurs *bit-identically*.
//! Epoch replays instead present *perturbed* members: same parties, same
//! (or nearly same) totals, slightly churned weights. Certificates bridge
//! that gap. A [`CertifyingOracle`] reports, alongside each Restriction
//! verdict, the **margin** by which the check settled, as a
//! [`VerdictCertificate`]:
//!
//! * [`CertKind::ValidByBound`] — the floor of the Dantzig LP bound plus
//!   the densest item's ratio. Since the LP optimum moves by at most
//!   `P⁺ + r·δ` when tickets gain at most `P⁺` and the effective capacity
//!   grows by at most `δ`, the bound re-settles without re-sorting.
//! * [`CertKind::ValidByDp`] — a window of the exact min-weight frontier
//!   `W(q)` = least subset weight reaching profit `≥ q`, explored past the
//!   capacity by a slack. A perturbed member reaching `target'` would need
//!   an old subset of profit `≥ target' − P⁺` and weight `≤ cap' + D⁻`;
//!   if the stored frontier proves no such subset exists, the verdict is
//!   still Valid.
//! * [`CertKind::InvalidWitness`] — concrete violating subsets `(p, w)`.
//!   A witness survives a perturbation whenever `p − P⁻` still reaches the
//!   new target and `w + D⁺` still fits the new capacity.
//!
//! Here `D⁺`/`D⁻` are the summed per-party weight increases/decreases and
//! `P⁺`/`P⁻` the summed ticket increases/decreases between the stored
//! member and the presented one. [`CachingOracle`] (with
//! [`CachingOracle::with_certificates`]) keeps up to two *generations* of
//! certificates — each one weight snapshot plus per-total entries — and
//! consumes margins **cumulatively**: certificates are not rolled forward
//! per epoch, they are applied against growing deltas until a margin runs
//! out, at which point one fresh recompute re-anchors that member. Every
//! skipped check increments [`SolveStats::certificate_skips`].
//!
//! Entries are keyed by member total in an ordered index. An exact-total
//! hit is the fast path, but exact totals rarely repeat across epochs at
//! large `n` — re-solved brackets probe *nearby* totals instead — so on a
//! miss the lookup also tries the nearest stored totals on either side
//! (a **coarse** hit, counted in [`SolveStats::coarse_cert_hits`]). This
//! is sound for free: the margin replay is computed against the presented
//! member's actual ticket deltas, so a neighbor entry either absorbs the
//! extra delta within its margin or declines.
//!
//! Two properties the replay machinery relies on:
//!
//! * **Inner-oracle equivalence.** A skipped verdict equals what the
//!   wrapped oracle would have returned: the DP-backed kinds are exact
//!   statements about the item multiset (and decorate exact oracles), and
//!   `ValidByBound`'s inequality implies the inner LP test itself would
//!   re-settle Valid — so even the conservative [`LinearOracle`] stays
//!   bit-compatible under certificate skips.
//! * **Non-monotone dips are preserved.** Family validity is *not*
//!   monotone in the total (isolated `V.VVV` dips; see
//!   [`ValidityOracle`]'s contract). Certificates make no monotonicity
//!   assumption: each member's verdict is certified independently, so a
//!   replayed search walks the exact same dip structure — warm brackets
//!   land on the same local minimum with certificates on or off.
//!
//! Separation-shaped checks are never certified (their two-sided coupling
//! makes the margin algebra far weaker); they simply fall through to the
//! inner oracle.

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::knapsack::{self, Item, SortedItems};
use crate::problems::{WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::solver::SolveStats;
use crate::verify::{strict_capacity, ticket_target};
use crate::weights::Weights;
use crate::wide::{cmp_mul, mul_div_floor};
use std::cmp::Ordering;

/// An oracle's judgement of one family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The assignment satisfies the problem's property.
    Valid,
    /// The assignment violates the property (or the oracle cannot certify
    /// it — conservative oracles treat "unknown" as invalid).
    Invalid,
}

/// One candidate of the `t(s, k)` family, as presented to an oracle.
#[derive(Debug, Clone, Copy)]
pub struct FamilyMember<'a> {
    /// The instance's party weights.
    pub weights: &'a Weights,
    /// The candidate ticket assignment.
    pub tickets: &'a TicketAssignment,
    /// Total tickets of the candidate (`tickets.total()`, pre-narrowed).
    pub total: u64,
}

/// Problem-shape parameters of a validity check, fixed for a whole solve.
///
/// Weight Qualification reduces to Weight Restriction (Theorem 2.2), so two
/// shapes cover all three problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckParams {
    /// Weight Restriction: no subset under `capacity` total weight may
    /// reach `ceil(alpha_n * T)` tickets.
    Restriction {
        /// Largest subset weight strictly below `alpha_w * W`.
        capacity: u128,
        /// Ticket-fraction threshold; the per-candidate target is
        /// `ceil(alpha_n * total)`.
        alpha_n: Ratio,
    },
    /// Weight Separation: max tickets under `cap_low` plus max tickets
    /// under `cap_high` must stay below the candidate total.
    Separation {
        /// Largest subset weight strictly below `alpha * W`.
        cap_low: u128,
        /// Largest subset weight strictly below `(1 - beta) * W`.
        cap_high: u128,
    },
}

impl CheckParams {
    /// Check parameters for a Weight Restriction instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computation.
    pub fn restriction(
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Self, CoreError> {
        Ok(CheckParams::Restriction {
            capacity: strict_capacity(params.alpha_w(), weights.total())?,
            alpha_n: params.alpha_n(),
        })
    }

    /// Check parameters for a Weight Separation instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computations.
    pub fn separation(weights: &Weights, params: &WeightSeparation) -> Result<Self, CoreError> {
        Ok(CheckParams::Separation {
            cap_low: strict_capacity(params.alpha(), weights.total())?,
            cap_high: strict_capacity(params.beta().one_minus()?, weights.total())?,
        })
    }
}

/// A validity-checking regime the solver's binary search drives.
///
/// # Contract
///
/// * `check` must never return [`Verdict::Valid`] for an invalid member
///   (soundness); returning [`Verdict::Invalid`] for a valid member is
///   allowed (conservatism) **as long as** the theoretical-bound member is
///   still judged valid, or the search's bootstrapping fallback would break.
///   Exact oracles additionally make the search land on a local minimum.
/// * The searched predicate "member with total `T` is valid" is *mostly*
///   monotone along the family but **not guaranteed to flip exactly
///   once**: real stake distributions exhibit isolated dips (`V.VVV`
///   patterns — a valid member just below an invalid one), so the family
///   can hold several local minima. Any bracketing search with `lo`
///   invalid / `hi` valid lands on *a* local minimum — which is all
///   Appendix A needs for the ticket bounds — but differently-seeded
///   brackets (e.g. a warm-started epoch re-solve) may land on different
///   ones.
/// * `take_stats` returns the counters accumulated since the previous call
///   and resets them; the search drains once per solve (on errors too), so
///   a shared oracle instance yields per-solve stats for free. Oracles
///   report only how checks were *settled* (`settled_by_*`,
///   `dp_invocations`); the search-shaped counters (`candidates_checked`,
///   `settled_by_theorem`) are owned and filled by the driver.
pub trait ValidityOracle {
    /// Judges one family member under the given check parameters.
    ///
    /// # Errors
    ///
    /// Implementations propagate arithmetic-envelope errors.
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError>;

    /// Drains the counters accumulated since the last call.
    fn take_stats(&mut self) -> SolveStats;
}

/// Shared per-candidate preparation: the knapsack item view of a member.
fn fill_items(buf: &mut Vec<Item>, member: &FamilyMember<'_>) {
    buf.clear();
    buf.extend(
        member
            .weights
            .as_slice()
            .iter()
            .zip(member.tickets.as_slice())
            .map(|(&weight, &profit)| Item { profit, weight }),
    );
}

/// The per-candidate ticket target for a Restriction-shaped check, already
/// compared against `total`: `None` means the target exceeds the total and
/// the member is trivially valid.
fn restriction_target(alpha_n: Ratio, total: u64) -> Result<Option<u64>, CoreError> {
    let target = ticket_target(alpha_n, u128::from(total))?;
    if target > u128::from(total) {
        return Ok(None);
    }
    Ok(Some(u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?))
}

/// How a Restriction-shaped check settled, with the margin retained so the
/// verdict can be replayed under perturbed weights (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertKind {
    /// Settled Valid by the Dantzig LP bound: the true optimum is at most
    /// `lp_floor`, and the LP curve's capacity slope is at most `r`.
    ValidByBound {
        /// Floor of the LP bound at the check's capacity.
        lp_floor: u128,
        /// Densest item's `(profit, weight)` ratio; `None` when no
        /// positive-weight item exists (slope zero).
        r: Option<(u64, u64)>,
    },
    /// Settled Valid by the exact DP: a window of the min-weight frontier.
    ValidByDp {
        /// Lowest profit the stored window covers; lookups below it are
        /// inconclusive.
        floor_q: u64,
        /// `(profit, min weight)` pairs, strictly increasing in both
        /// coordinates; the first entry with profit `>= q` gives the exact
        /// least weight reaching profit `>= q` (for `q >= floor_q`).
        frontier: Vec<(u64, u128)>,
        /// Weight horizon the frontier is exact to: profits with no entry
        /// require weight strictly beyond this.
        explored_to: u128,
    },
    /// Settled Invalid: concrete violating subsets as `(profit, weight)`
    /// pairs — each is a real subset of the checked member's items.
    InvalidWitness {
        /// Witness packings, ascending in both coordinates.
        witnesses: Vec<(u128, u128)>,
    },
}

/// A delta-stable certificate for one Restriction verdict: the check's
/// geometry plus the margin it settled by ([`CertKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictCertificate {
    /// Weight capacity the check ran under.
    pub capacity: u128,
    /// Ticket target the check ran under.
    pub target: u64,
    /// The settling margin.
    pub kind: CertKind,
}

/// A [`ValidityOracle`] that can additionally report verdict certificates.
///
/// `check_certified` must return the same verdict (and bump the same
/// counters) as [`ValidityOracle::check`]; the certificate, when present,
/// must be a true statement about the member's item multiset per the
/// [`CertKind`] semantics. Returning `None` is always allowed.
pub trait CertifyingOracle: ValidityOracle {
    /// Judges one family member and reports the settling margin.
    ///
    /// # Errors
    ///
    /// Implementations propagate arithmetic-envelope errors.
    fn check_certified(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<(Verdict, Option<VerdictCertificate>), CoreError>;
}

/// `ceil(num * delta / den)` with exact 256-bit intermediates; `None` when
/// the quotient overflows `u128` (callers treat that as "cannot certify").
fn ceil_mul_div(num: u64, delta: u128, den: u64) -> Option<u128> {
    if num == 0 || delta == 0 {
        return Some(0);
    }
    let q = mul_div_floor(u128::from(num), delta, u128::from(den))?;
    if cmp_mul(q, u128::from(den), u128::from(num), delta) == Ordering::Equal {
        Some(q)
    } else {
        q.checked_add(1)
    }
}

/// Profit headroom the certificate-grade DP explores past the target, so
/// invalidity witnesses keep margin against future ticket losses.
const CERT_PROFIT_HEADROOM: u64 = 32;

/// Number of frontier entries a stored certificate keeps (the window
/// closest to the target carries all the useful margin).
const CERT_WINDOW: usize = 192;

/// Exact oracle: quick test first, the knapsack DP only on "uncertain".
///
/// Memoizes its working state across checks — the item buffer, the
/// ratio-sorted prefix sums ([`SortedItems`]) and the DP table
/// ([`knapsack::DpScratch`]) are allocated once per oracle and recycled
/// through the entire binary search (and, via [`crate::Swiper::solve_many`],
/// across instances of a sweep).
#[derive(Debug, Default, Clone)]
pub struct FullOracle {
    items: Vec<Item>,
    next_items: Vec<Item>,
    changed: Vec<usize>,
    sorted: SortedItems,
    dp: knapsack::DpScratch,
    stats: SolveStats,
}

impl FullOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        FullOracle::default()
    }

    /// Rebuilds the sorted view for `member`, splicing only the changed
    /// parties when the previous check had the same party count and churn
    /// stayed below one eighth of the parties (the epoch-replay shape);
    /// larger diffs fall back to a full re-sort. Leaves `self.items` equal
    /// to the member's item view.
    fn prepare(&mut self, member: &FamilyMember<'_>) {
        fill_items(&mut self.next_items, member);
        let n = self.next_items.len();
        if n == self.items.len() && n > 0 {
            self.changed.clear();
            for (i, (a, b)) in self.items.iter().zip(&self.next_items).enumerate() {
                if a != b {
                    self.changed.push(i);
                }
            }
            if self.changed.len() <= n / 8 {
                self.sorted.splice(&self.items, &self.next_items, &self.changed);
            } else {
                self.sorted.rebuild(&self.next_items);
            }
        } else {
            self.sorted.rebuild(&self.next_items);
        }
        std::mem::swap(&mut self.items, &mut self.next_items);
    }

    /// The shared check body; with `want_cert` the DP runs in probe mode
    /// (frontier + slack) and margins are packaged into a certificate.
    /// Verdicts and counters are identical either way.
    fn check_impl(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
        want_cert: bool,
    ) -> Result<(Verdict, Option<VerdictCertificate>), CoreError> {
        if member.total == 0 {
            return Ok((Verdict::Invalid, None));
        }
        self.prepare(member);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok((Verdict::Valid, None));
                };
                // Conservative bound: certainly-unreachable target means valid.
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    let cert = want_cert.then(|| VerdictCertificate {
                        capacity,
                        target,
                        kind: CertKind::ValidByBound {
                            lp_floor: self.sorted.fractional_upper_bound_floor(capacity),
                            r: self.sorted.densest(),
                        },
                    });
                    return Ok((Verdict::Valid, cert));
                }
                if let Some(witness) = self.sorted.greedy_witness(capacity, target) {
                    self.stats.settled_by_lower_bound += 1;
                    let cert = want_cert.then(|| VerdictCertificate {
                        capacity,
                        target,
                        kind: CertKind::InvalidWitness { witnesses: vec![witness] },
                    });
                    return Ok((Verdict::Invalid, cert));
                }
                self.stats.dp_invocations += 1;
                if !want_cert {
                    let reached = knapsack::max_profit_dp_with(
                        &mut self.dp,
                        &self.items,
                        capacity,
                        target,
                    ) >= target;
                    return Ok((if reached { Verdict::Invalid } else { Verdict::Valid }, None));
                }
                let probe = knapsack::max_profit_dp_probe(
                    &mut self.dp,
                    &self.items,
                    capacity,
                    target.saturating_add(CERT_PROFIT_HEADROOM),
                    capacity / 8 + 1,
                );
                if probe.best >= target {
                    // Every frontier point at or past the target that fits
                    // the capacity is a violating subset.
                    let witnesses: Vec<(u128, u128)> = probe
                        .frontier
                        .iter()
                        .filter(|&&(q, w)| q >= target && w <= capacity)
                        .map(|&(q, w)| (u128::from(q), w))
                        .collect();
                    let cert = VerdictCertificate {
                        capacity,
                        target,
                        kind: CertKind::InvalidWitness { witnesses },
                    };
                    return Ok((Verdict::Invalid, Some(cert)));
                }
                let skip = probe.frontier.len().saturating_sub(CERT_WINDOW);
                let frontier: Vec<(u64, u128)> = probe.frontier[skip..].to_vec();
                let floor_q = if skip == 0 { 0 } else { frontier.first().map_or(0, |e| e.0) };
                let cert = VerdictCertificate {
                    capacity,
                    target,
                    kind: CertKind::ValidByDp {
                        floor_q,
                        frontier,
                        explored_to: probe.prune_limit,
                    },
                };
                Ok((Verdict::Valid, Some(cert)))
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let total = u128::from(member.total);
                // Conservative: floor(LP bound) on both sides still summing
                // below total certifies validity (a + b < T <=> max-light <
                // min-heavy). Separation checks are never certified — the
                // two-sided coupling makes the margin algebra too weak.
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < total {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok((Verdict::Valid, None));
                }
                let a_lb = self.sorted.greedy_lower_bound(cap_low);
                let b_lb = self.sorted.greedy_lower_bound(cap_high);
                if a_lb + b_lb >= total {
                    self.stats.settled_by_lower_bound += 1;
                    return Ok((Verdict::Invalid, None));
                }
                self.stats.dp_invocations += 1;
                let a = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_low,
                    member.total,
                ));
                let b = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_high,
                    member.total,
                ));
                Ok((if a + b < total { Verdict::Valid } else { Verdict::Invalid }, None))
            }
        }
    }
}

impl ValidityOracle for FullOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        Ok(self.check_impl(member, params, false)?.0)
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

impl CertifyingOracle for FullOracle {
    fn check_certified(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<(Verdict, Option<VerdictCertificate>), CoreError> {
        self.check_impl(member, params, true)
    }
}

/// Conservative oracle: the fractional upper bound only (the prototype's
/// `--linear` flag). Never falsely accepts, never runs the DP.
#[derive(Debug, Default, Clone)]
pub struct LinearOracle {
    items: Vec<Item>,
    sorted: SortedItems,
    stats: SolveStats,
}

impl LinearOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        LinearOracle::default()
    }

    fn check_impl(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
        want_cert: bool,
    ) -> Result<(Verdict, Option<VerdictCertificate>), CoreError> {
        if member.total == 0 {
            return Ok((Verdict::Invalid, None));
        }
        fill_items(&mut self.items, member);
        self.sorted.rebuild(&self.items);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok((Verdict::Valid, None));
                };
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    let cert = want_cert.then(|| VerdictCertificate {
                        capacity,
                        target,
                        kind: CertKind::ValidByBound {
                            lp_floor: self.sorted.fractional_upper_bound_floor(capacity),
                            r: self.sorted.densest(),
                        },
                    });
                    return Ok((Verdict::Valid, cert));
                }
                // Only the conservative test is allowed: treat as invalid.
                // This Invalid is *not* a fact about the member (it may well
                // be valid), so it never yields a certificate.
                Ok((Verdict::Invalid, None))
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < u128::from(member.total) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok((Verdict::Valid, None));
                }
                Ok((Verdict::Invalid, None))
            }
        }
    }
}

impl ValidityOracle for LinearOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        Ok(self.check_impl(member, params, false)?.0)
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

impl CertifyingOracle for LinearOracle {
    fn check_certified(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<(Verdict, Option<VerdictCertificate>), CoreError> {
        self.check_impl(member, params, true)
    }
}

/// Memoizing decorator: `(family member, params) → verdict`, keyed by a
/// 128-bit fingerprint of the member's weight/ticket vector and total
/// (see [`CachingOracle::new`] for the soundness argument).
///
/// The fingerprint is two independent SipHash lanes keyed by per-oracle
/// [`std::collections::hash_map::RandomState`]s drawn at construction.
/// Weight snapshots are attacker-influenceable inputs, and an unkeyed
/// fingerprint (FNV and friends) would let crafted colliding vectors
/// poison the cache with a wrong verdict; with process-random keys a
/// collision cannot be computed from the outside, and an *accidental*
/// 128-bit collision stays negligible (~2^-60 even at billions of
/// entries). Fingerprints differ across processes — irrelevant, the cache
/// is process-local; the verdicts it stores are deterministic.
///
/// Hits and misses drain into [`SolveStats::cache_hits`] /
/// [`SolveStats::cache_misses`] alongside the inner oracle's settlement
/// counters, so sweeps can report hit rates per solve with no extra
/// plumbing. The cache itself is *not* drained per solve — reuse across
/// solves (and epochs) is the whole point; call [`CachingOracle::clear`]
/// to reset it, or rely on the [`CachingOracle::with_max_entries`] bound.
///
/// # Examples
///
/// ```
/// use swiper_core::{CachingOracle, FullOracle, Ratio, Swiper, Weights, WeightRestriction};
///
/// # fn main() -> Result<(), swiper_core::CoreError> {
/// let weights = Weights::new(vec![100, 50, 20, 10, 5, 5, 5, 5])?;
/// let params = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2))?;
/// let mut oracle = CachingOracle::new(FullOracle::new());
/// let solver = Swiper::new();
/// let first = solver.solve_restriction_with(&mut oracle, &weights, &params)?;
/// let again = solver.solve_restriction_with(&mut oracle, &weights, &params)?;
/// assert_eq!(first.assignment, again.assignment);
/// // The second identical solve is answered entirely from the cache.
/// assert_eq!(again.stats.cache_misses, 0);
/// assert_eq!(again.stats.cache_hits, again.stats.candidates_checked);
/// assert_eq!(again.stats.dp_invocations, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CachingOracle<O> {
    inner: O,
    cache: std::collections::HashMap<(u128, CheckParams), Verdict>,
    /// The two SipHash key pairs behind the member fingerprint; cloning an
    /// oracle keeps them, so clones share a key space (and could share
    /// entries), while independently constructed oracles do not.
    lanes: (std::collections::hash_map::RandomState, std::collections::hash_map::RandomState),
    max_entries: usize,
    certificates: bool,
    /// Weight snapshot the memoized fingerprint prefix was computed over.
    fp_weights: Option<Weights>,
    /// Both hash lanes advanced past the weight vector — cloned per check
    /// so the O(n) weight hashing happens once per `(member, epoch)`, not
    /// per lookup.
    fp_prefix: Option<(DefaultHasher, DefaultHasher)>,
    /// Certificate generations: `cur_gen` is the newest weight snapshot
    /// with freshly computed certificates, `prev_gen` the one before it.
    cur_gen: Option<CertGen>,
    prev_gen: Option<CertGen>,
    hits: u64,
    misses: u64,
    cert_skips: u64,
    coarse_hits: u64,
}

type DefaultHasher = std::collections::hash_map::DefaultHasher;

/// One certificate generation: a weight snapshot plus per-total entries.
/// Deltas are measured against this snapshot *cumulatively* — certificates
/// are consumed until their margin runs out, not rolled forward per epoch.
#[derive(Debug, Clone)]
struct CertGen {
    weights: Weights,
    /// Ordered by member total so nearest-neighbor (coarse) lookups can
    /// walk to adjacent stored totals when the exact key misses.
    by_total: std::collections::BTreeMap<u64, StoredCert>,
    /// Ticket-pair budget accounting across `by_total`.
    pairs: usize,
}

/// A stored certificate: the member's sparse nonzero tickets (for the
/// ticket-delta scan) plus the settling margin.
#[derive(Debug, Clone)]
struct StoredCert {
    tickets: Vec<(u32, u64)>,
    cert: VerdictCertificate,
}

/// Per-generation bound on stored certificate entries.
const CERT_ENTRY_BUDGET: usize = 1 << 16;
/// Per-generation bound on stored sparse ticket pairs.
const CERT_PAIR_BUDGET: usize = 1 << 21;

/// Applies a stored certificate to a perturbed member: computes the
/// cumulative weight deltas `D⁺`/`D⁻` and ticket deltas `P⁺`/`P⁻` against
/// the generation snapshot in one fused scan, then replays the margin
/// inequality for the stored [`CertKind`]. `None` means the margin is
/// insufficient (or arithmetic left `u128`) and the caller must recompute.
fn apply_certificate(
    gen: &CertGen,
    sc: &StoredCert,
    member: &FamilyMember<'_>,
    cap_new: u128,
    target_new: u64,
) -> Option<Verdict> {
    let (mut d_plus, mut d_minus) = (0u128, 0u128);
    for (&ow, &nw) in gen.weights.as_slice().iter().zip(member.weights.as_slice()) {
        if nw >= ow {
            d_plus += u128::from(nw - ow);
        } else {
            d_minus += u128::from(ow - nw);
        }
    }
    let (mut p_plus, mut p_minus) = (0u128, 0u128);
    let mut old = sc.tickets.iter().peekable();
    for (i, &tn) in member.tickets.as_slice().iter().enumerate() {
        let to = match old.peek() {
            Some(&&(j, t)) if j as usize == i => {
                old.next();
                t
            }
            _ => 0,
        };
        if tn >= to {
            p_plus += u128::from(tn - to);
        } else {
            p_minus += u128::from(to - tn);
        }
    }
    match &sc.cert.kind {
        CertKind::ValidByBound { lp_floor, r } => {
            // New LP optimum <= lp_floor + 1 - eps + P⁺ + r·δ, so a strict
            // integer inequality on the floor re-certifies Valid — and
            // implies the inner oracle's own LP test would settle Valid too.
            let delta = cap_new.checked_add(d_minus)?.saturating_sub(sc.cert.capacity);
            let slope = match r {
                None => 0,
                Some((num, den)) => ceil_mul_div(*num, delta, *den)?,
            };
            let bound = lp_floor.checked_add(p_plus)?.checked_add(slope)?;
            (bound < u128::from(target_new)).then_some(Verdict::Valid)
        }
        CertKind::ValidByDp { floor_q, frontier, explored_to } => {
            // A new subset reaching target_new had old profit >= q* and old
            // weight <= cap_new + D⁻; the frontier proves no such subset.
            let q_star = u128::from(target_new).checked_sub(p_plus)?;
            if q_star == 0 {
                return None;
            }
            let q_look = q_star.min(u128::from(sc.cert.target));
            if q_look < u128::from(*floor_q) {
                return None;
            }
            let need = cap_new.checked_add(d_minus)?;
            let idx = frontier.partition_point(|&(p, _)| u128::from(p) < q_look);
            match frontier.get(idx) {
                Some(&(_, w)) => (w > need).then_some(Verdict::Valid),
                None => (*explored_to >= need).then_some(Verdict::Valid),
            }
        }
        CertKind::InvalidWitness { witnesses } => {
            // A witness subset keeps profit >= p - P⁻ and weight <= w + D⁺
            // under the perturbation.
            let need_p = u128::from(target_new).checked_add(p_minus)?;
            witnesses
                .iter()
                .any(|&(p, w)| {
                    p >= need_p && w.checked_add(d_plus).is_some_and(|nw| nw <= cap_new)
                })
                .then_some(Verdict::Invalid)
        }
    }
}

impl<O> CachingOracle<O> {
    /// Default bound on cached verdicts; the cache is wholesale-cleared
    /// when an insert would exceed it (epoch workloads churn keys, so an
    /// occasional cold restart beats per-entry eviction bookkeeping).
    pub const DEFAULT_MAX_ENTRIES: usize = 1 << 20;

    /// Wraps `inner` with an empty cache.
    ///
    /// Soundness: a verdict depends only on the `(weight, ticket)` item
    /// multiset, the member total and the check parameters — exactly what
    /// the key covers — so a hit returns what the inner oracle *would*
    /// return, and the decorated oracle inherits the inner oracle's
    /// contract (exactness included) verbatim.
    pub fn new(inner: O) -> Self {
        CachingOracle {
            inner,
            cache: std::collections::HashMap::new(),
            lanes: Default::default(),
            max_entries: Self::DEFAULT_MAX_ENTRIES,
            certificates: false,
            fp_weights: None,
            fp_prefix: None,
            cur_gen: None,
            prev_gen: None,
            hits: 0,
            misses: 0,
            cert_skips: 0,
            coarse_hits: 0,
        }
    }

    /// The keyed 128-bit member fingerprint (two independent SipHash
    /// lanes); see the type docs for why the keys matter.
    ///
    /// The weight vector dominates the hash input but is shared by every
    /// member of one family, so both lanes' states after hashing
    /// `(len, weights...)` are memoized against a [`Weights`] snapshot and
    /// only the O(nonzero-tickets) suffix `(total, sparse tickets, count)`
    /// is hashed per check. The suffix is self-delimiting given the fixed
    /// prefix, so the keyed fingerprint stays injective on the
    /// `(weights, total, tickets)` triple up to SipHash collisions, exactly
    /// as before.
    fn member_fingerprint(&mut self, member: &FamilyMember<'_>) -> u128 {
        use std::hash::{BuildHasher, Hasher};
        let stale = match &self.fp_weights {
            Some(w) => w.total() != member.weights.total() || *w != *member.weights,
            None => true,
        };
        if stale {
            let mut lo = self.lanes.0.build_hasher();
            let mut hi = self.lanes.1.build_hasher();
            lo.write_u64(member.weights.len() as u64);
            hi.write_u64(member.weights.len() as u64);
            for &w in member.weights.as_slice() {
                lo.write_u64(w);
                hi.write_u64(w);
            }
            self.fp_prefix = Some((lo, hi));
            self.fp_weights = Some(member.weights.clone());
        }
        let (mut lo, mut hi) = self.fp_prefix.clone().expect("prefix memoized above");
        fn eat(lo: &mut DefaultHasher, hi: &mut DefaultHasher, v: u64) {
            lo.write_u64(v);
            hi.write_u64(v);
        }
        eat(&mut lo, &mut hi, member.total);
        let mut nonzero = 0u64;
        for (i, &t) in member.tickets.as_slice().iter().enumerate() {
            if t != 0 {
                eat(&mut lo, &mut hi, i as u64);
                eat(&mut lo, &mut hi, t);
                nonzero += 1;
            }
        }
        eat(&mut lo, &mut hi, nonzero);
        (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
    }

    /// Sets the cache-size bound (`0` disables caching entirely).
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        self.max_entries = max_entries;
        self
    }

    /// Enables or disables delta-stable verdict certificates (off by
    /// default; see the module docs for the contract). Disabling drops any
    /// stored generations.
    #[must_use]
    pub fn with_certificates(mut self, on: bool) -> Self {
        self.certificates = on;
        if !on {
            self.cur_gen = None;
            self.prev_gen = None;
        }
        self
    }

    /// Whether delta-stable certificates are enabled.
    pub fn certificates_enabled(&self) -> bool {
        self.certificates
    }

    /// Tries to settle a Restriction check from a stored certificate.
    /// `None` (also on trivial targets or arithmetic-envelope trouble)
    /// falls through to a fresh inner-oracle check. The `bool` reports
    /// whether the settling entry was found under the member's *exact*
    /// total (`false`) or under a nearby coarse key (`true`).
    fn try_certificate(
        &self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Option<(Verdict, bool)> {
        let &CheckParams::Restriction { capacity, alpha_n } = params else { return None };
        if member.total == 0 {
            return None;
        }
        let target_new = restriction_target(alpha_n, member.total).ok()??;
        for gen in [self.cur_gen.as_ref(), self.prev_gen.as_ref()].into_iter().flatten() {
            if gen.weights.len() != member.weights.len() {
                continue;
            }
            if let Some(sc) = gen.by_total.get(&member.total) {
                if let Some(v) = apply_certificate(gen, sc, member, capacity, target_new) {
                    return Some((v, false));
                }
            }
            // Coarse pass: `apply_certificate` replays the margin against
            // the *presented* member (it recomputes the target and scans
            // actual ticket deltas), so an entry stored under a nearby
            // total can legitimately settle this one — the ticket-delta
            // gap between the two family members simply consumes margin
            // like any other perturbation. Exact totals rarely repeat
            // across epochs at a million parties, so without this pass the
            // store never pays off at scale. The window only bounds lookup
            // cost to the two nearest neighbors; the margin algebra stays
            // the sole authority on soundness.
            let window = (member.total >> 8).max(64);
            let lo = member.total.saturating_sub(window);
            let below = gen.by_total.range(lo..member.total).next_back();
            let above = member.total.checked_add(1).and_then(|succ| {
                gen.by_total.range(succ..=member.total.saturating_add(window)).next()
            });
            for (_, sc) in below.into_iter().chain(above) {
                if let Some(v) = apply_certificate(gen, sc, member, capacity, target_new) {
                    return Some((v, true));
                }
            }
        }
        None
    }

    /// Stores a freshly computed certificate, rotating generations when the
    /// weight snapshot changed. Budget overruns silently drop the store —
    /// certificates are an optimization, never load-bearing.
    fn store_certificate(&mut self, member: &FamilyMember<'_>, cert: VerdictCertificate) {
        if u32::try_from(member.weights.len()).is_err() {
            return;
        }
        let rotate = self.cur_gen.as_ref().is_none_or(|g| g.weights != *member.weights);
        if rotate {
            if let Some(g) = self.cur_gen.take() {
                if !g.by_total.is_empty() {
                    self.prev_gen = Some(g);
                }
            }
            self.cur_gen = Some(CertGen {
                weights: member.weights.clone(),
                by_total: std::collections::BTreeMap::new(),
                pairs: 0,
            });
        }
        let gen = self.cur_gen.as_mut().expect("generation ensured above");
        let sparse: Vec<(u32, u64)> = member
            .tickets
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != 0)
            .map(|(i, &t)| (i as u32, t))
            .collect();
        if gen.by_total.len() >= CERT_ENTRY_BUDGET
            || gen.pairs.saturating_add(sparse.len()) > CERT_PAIR_BUDGET
        {
            return;
        }
        gen.pairs += sparse.len();
        gen.by_total.insert(member.total, StoredCert { tickets: sparse, cert });
    }

    fn cache_insert(&mut self, key: (u128, CheckParams), verdict: Verdict) {
        if self.max_entries > 0 {
            if self.cache.len() >= self.max_entries {
                self.cache.clear();
            }
            self.cache.insert(key, verdict);
        }
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Drops all cached verdicts and stored certificate generations
    /// (counters are unaffected; they drain through
    /// [`ValidityOracle::take_stats`]).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.cur_gen = None;
        self.prev_gen = None;
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: CertifyingOracle> ValidityOracle for CachingOracle<O> {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        let key = (self.member_fingerprint(member), *params);
        if let Some(&verdict) = self.cache.get(&key) {
            self.hits += 1;
            return Ok(verdict);
        }
        if self.certificates {
            if let Some((verdict, coarse)) = self.try_certificate(member, params) {
                if coarse {
                    self.coarse_hits += 1;
                } else {
                    self.cert_skips += 1;
                }
                // Seed the exact-fingerprint cache so repeats within the
                // epoch hit without replaying the delta scan.
                self.cache_insert(key, verdict);
                return Ok(verdict);
            }
            let (verdict, cert) = self.inner.check_certified(member, params)?;
            self.misses += 1;
            self.cache_insert(key, verdict);
            if let Some(cert) = cert {
                self.store_certificate(member, cert);
            }
            return Ok(verdict);
        }
        let verdict = self.inner.check(member, params)?;
        self.misses += 1;
        self.cache_insert(key, verdict);
        Ok(verdict)
    }

    fn take_stats(&mut self) -> SolveStats {
        let mut stats = self.inner.take_stats();
        stats.cache_hits += std::mem::take(&mut self.hits);
        stats.cache_misses += std::mem::take(&mut self.misses);
        stats.certificate_skips += std::mem::take(&mut self.cert_skips);
        stats.coarse_cert_hits += std::mem::take(&mut self.coarse_hits);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::WeightRestriction;
    use proptest::prelude::*;

    fn member_for<'a>(weights: &'a Weights, tickets: &'a TicketAssignment) -> FamilyMember<'a> {
        let total = u64::try_from(tickets.total()).unwrap();
        FamilyMember { weights, tickets, total }
    }

    #[test]
    fn zero_total_is_invalid_for_both_oracles() {
        let w = Weights::new(vec![5, 3, 2]).unwrap();
        let t = TicketAssignment::new(vec![0, 0, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let member = member_for(&w, &t);
        assert_eq!(FullOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
        assert_eq!(LinearOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
    }

    #[test]
    fn linear_never_accepts_what_full_rejects() {
        // Conservatism: Linear's Valid verdicts are a subset of Full's.
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut full = FullOracle::new();
        let mut linear = LinearOracle::new();
        for total in 1u64..=12 {
            let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
            let t = fam.assignment_with_total(total).unwrap();
            let member = member_for(&w, &t);
            let fv = full.check(&member, &params).unwrap();
            let lv = linear.check(&member, &params).unwrap();
            if lv == Verdict::Valid {
                assert_eq!(fv, Verdict::Valid, "linear accepted what full rejects at {total}");
            }
        }
    }

    #[test]
    fn caching_oracle_hits_on_repeats_and_matches_inner() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut plain = FullOracle::new();
        let mut cached = CachingOracle::new(FullOracle::new());
        for round in 0..2 {
            for total in 1u64..=10 {
                let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
                let t = fam.assignment_with_total(total).unwrap();
                let member = member_for(&w, &t);
                let expect = plain.check(&member, &params).unwrap();
                assert_eq!(cached.check(&member, &params).unwrap(), expect, "round {round}");
            }
        }
        let stats = cached.take_stats();
        assert_eq!(stats.cache_misses, 10, "first round fills the cache");
        assert_eq!(stats.cache_hits, 10, "second round is answered from it");
        assert_eq!(cached.len(), 10);
    }

    #[test]
    fn caching_oracle_distinguishes_params_and_members() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let member = member_for(&w, &t);
        let pa = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let pb = WeightRestriction::new(Ratio::of(1, 4), Ratio::of(1, 3)).unwrap();
        let mut cached = CachingOracle::new(FullOracle::new());
        cached.check(&member, &CheckParams::restriction(&w, &pa).unwrap()).unwrap();
        cached.check(&member, &CheckParams::restriction(&w, &pb).unwrap()).unwrap();
        // Same tickets under different weights must also be distinct keys.
        let w2 = Weights::new(vec![40, 25, 20, 10, 6]).unwrap();
        let member2 = member_for(&w2, &t);
        cached.check(&member2, &CheckParams::restriction(&w2, &pa).unwrap()).unwrap();
        let stats = cached.take_stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 3);
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn caching_oracle_respects_max_entries() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut cached = CachingOracle::new(FullOracle::new()).with_max_entries(0);
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let member = member_for(&w, &t);
        cached.check(&member, &params).unwrap();
        cached.check(&member, &params).unwrap();
        assert!(cached.is_empty(), "max_entries == 0 disables caching");
        assert_eq!(cached.take_stats().cache_misses, 2);

        let mut small = CachingOracle::new(FullOracle::new()).with_max_entries(2);
        for total in 1u64..=5 {
            let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
            let t = fam.assignment_with_total(total).unwrap();
            small.check(&member_for(&w, &t), &params).unwrap();
        }
        assert!(small.len() <= 2, "cache stays bounded: {}", small.len());
    }

    #[test]
    fn take_stats_drains() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut oracle = FullOracle::new();
        oracle.check(&member_for(&w, &t), &params).unwrap();
        let stats = oracle.take_stats();
        // The driver owns candidates_checked; the oracle reports only how
        // the check was settled.
        assert_eq!(stats.candidates_checked, 0);
        let settled =
            stats.settled_by_upper_bound + stats.settled_by_lower_bound + stats.dp_invocations;
        assert_eq!(settled, 1);
        assert_eq!(oracle.take_stats(), SolveStats::default());
    }

    // --- Delta-stable certificate tests -----------------------------------
    //
    // The handcrafted instances below sit exactly on the margin boundaries:
    // each skip case has a sibling perturbation one step past the margin
    // where the stored verdict would be *wrong*, so loosening any margin
    // check (dropping D⁺/D⁻, widening explored_to, ...) flips an assertion.

    /// Certified oracle primed on `(weights, tickets, params)`; returns it
    /// plus the priming stats.
    fn primed(ws: &[u64], ts: &[u64], params: &CheckParams) -> CachingOracle<FullOracle> {
        let w = Weights::new(ws.to_vec()).unwrap();
        let t = TicketAssignment::new(ts.to_vec());
        let mut c = CachingOracle::new(FullOracle::new()).with_certificates(true);
        c.check(&member_for(&w, &t), params).unwrap();
        let stats = c.take_stats();
        assert_eq!(stats.certificate_skips, 0, "priming never skips");
        c
    }

    /// Checks `(ws, ts)` against `params` on the primed oracle and asserts
    /// the verdict, whether a certificate skip happened, and that the
    /// verdict matches a fresh FullOracle recompute.
    fn check_perturbed(
        c: &mut CachingOracle<FullOracle>,
        ws: &[u64],
        ts: &[u64],
        params: &CheckParams,
        expect: Verdict,
        expect_skip: bool,
    ) {
        let w = Weights::new(ws.to_vec()).unwrap();
        let t = TicketAssignment::new(ts.to_vec());
        let member = member_for(&w, &t);
        let fresh = FullOracle::new().check(&member, params).unwrap();
        assert_eq!(fresh, expect, "instance is miscrafted");
        assert_eq!(c.check(&member, params).unwrap(), expect);
        let stats = c.take_stats();
        assert_eq!(stats.certificate_skips, u64::from(expect_skip), "skip mismatch");
        if expect_skip {
            assert_eq!(stats.dp_invocations, 0, "a skip must not run the DP");
        }
    }

    #[test]
    fn invalid_witness_certificate_skips_and_respects_weight_gains() {
        // Base: weights [5,5,6], tickets [6,6,7], cap 11, target 13 —
        // settles Invalid by DP with witness (13, 11), zero slack.
        let params = CheckParams::Restriction { capacity: 11, alpha_n: Ratio::of(13, 19) };
        let mut c = primed(&[5, 5, 6], &[6, 6, 7], &params);
        // D⁻ = 1 leaves the witness feasible: skip Invalid.
        check_perturbed(&mut c, &[5, 5, 5], &[6, 6, 7], &params, Verdict::Invalid, true);
        // D⁺ = 1 pushes the witness to weight 12 > 11 — and the true
        // verdict flips to Valid, so skipping here would be unsound.
        check_perturbed(&mut c, &[5, 5, 7], &[6, 6, 7], &params, Verdict::Valid, false);
    }

    #[test]
    fn valid_by_bound_certificate_skips_and_respects_weight_losses() {
        // Base: same instance at target 14 — LP floor 13 < 14 settles
        // Valid by the Dantzig bound (margin 1, densest ratio 6/5).
        let params = CheckParams::Restriction { capacity: 11, alpha_n: Ratio::of(14, 19) };
        let mut c = primed(&[5, 5, 6], &[6, 6, 7], &params);
        // D⁺ only: δ = 0, bound 13 < 14 still holds — skip Valid.
        check_perturbed(&mut c, &[5, 5, 7], &[6, 6, 7], &params, Verdict::Valid, true);
        // D⁻ = 1: δ = 1, slope ceil(6/5) = 2 pushes the bound to 15 ≥ 14 —
        // the margin is gone and the oracle must recompute.
        check_perturbed(&mut c, &[4, 5, 6], &[6, 6, 7], &params, Verdict::Valid, false);
    }

    #[test]
    fn valid_by_dp_certificate_explored_to_boundary() {
        // Base: weights [6,6], tickets [6,6], cap 7, target 7 — the LP
        // packs 7 exactly (floor 7, not < 7) so the DP must run: max
        // integral profit under weight 7 is 6 < 7 → Valid by DP. Probe
        // slack is 7/8 + 1 = 1, so explored_to = 8 and the stored frontier
        // is [(0,0), (6,6)].
        let params = CheckParams::Restriction { capacity: 7, alpha_n: Ratio::of(7, 12) };
        let mut c = primed(&[6, 6], &[6, 6], &params);
        // D⁻ = 1: need = 8 ≤ explored_to — skip Valid.
        check_perturbed(&mut c, &[6, 5], &[6, 6], &params, Verdict::Valid, true);
        // D⁻ = 5: need = 12 > explored_to = 8, and the true verdict flips
        // ({1,6} weighs 7 and holds 12 tickets ≥ 7) — skipping would lie.
        check_perturbed(&mut c, &[1, 6], &[6, 6], &params, Verdict::Invalid, false);
    }

    #[test]
    fn valid_by_dp_certificate_frontier_entry_lookup_across_target_change() {
        // Same base as above, then replayed under a *smaller* capacity and
        // target (alpha_n 1/2 → target 6): the lookup lands on frontier
        // entry (6, 6) whose exact weight 6 exceeds need = 5 — skip Valid
        // without ever touching items.
        let prime = CheckParams::Restriction { capacity: 7, alpha_n: Ratio::of(7, 12) };
        let mut c = primed(&[6, 6], &[6, 6], &prime);
        let replay = CheckParams::Restriction { capacity: 5, alpha_n: Ratio::of(1, 2) };
        check_perturbed(&mut c, &[6, 6], &[6, 6], &replay, Verdict::Valid, true);
    }

    #[test]
    fn certificate_skip_seeds_the_exact_cache() {
        let params = CheckParams::Restriction { capacity: 11, alpha_n: Ratio::of(13, 19) };
        let mut c = primed(&[5, 5, 6], &[6, 6, 7], &params);
        let w = Weights::new(vec![5, 5, 5]).unwrap();
        let t = TicketAssignment::new(vec![6, 6, 7]);
        let member = member_for(&w, &t);
        assert_eq!(c.check(&member, &params).unwrap(), Verdict::Invalid);
        assert_eq!(c.check(&member, &params).unwrap(), Verdict::Invalid);
        let stats = c.take_stats();
        assert_eq!(stats.certificate_skips, 1, "second check hits the cache instead");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn coarse_lookup_settles_nearby_totals_and_respects_margins() {
        // Prime stores a ValidByBound cert at total 19 (LP floor 13 <
        // target 14). The same family's total-20 member was never stored,
        // but the nearest-neighbor pass finds the total-19 entry and its
        // margin absorbs the one-ticket delta: floor 13 + P⁺ 1 = 14 <
        // target 15.
        let params = CheckParams::Restriction { capacity: 11, alpha_n: Ratio::of(14, 19) };
        let mut c = primed(&[5, 5, 6], &[6, 6, 7], &params);
        let w = Weights::new(vec![5, 5, 6]).unwrap();
        let near = TicketAssignment::new(vec![6, 6, 8]);
        let member = member_for(&w, &near);
        assert_eq!(
            FullOracle::new().check(&member, &params).unwrap(),
            Verdict::Valid,
            "instance is miscrafted"
        );
        assert_eq!(c.check(&member, &params).unwrap(), Verdict::Valid);
        let stats = c.take_stats();
        assert_eq!(stats.coarse_cert_hits, 1, "settled from the total-19 entry");
        assert_eq!(stats.certificate_skips, 0, "total 20 is not an exact key");
        assert_eq!(stats.dp_invocations, 0, "a coarse hit must not run the DP");
        // A bigger ticket delta exhausts the margin (floor 13 + P⁺ 13 ≥
        // target 24): the coarse pass must decline and the oracle must
        // recompute — the true verdict here is Invalid, so replaying the
        // stale Valid would lie.
        let far = TicketAssignment::new(vec![6, 6, 20]);
        let member = member_for(&w, &far);
        assert_eq!(c.check(&member, &params).unwrap(), Verdict::Invalid);
        let stats = c.take_stats();
        assert_eq!(stats.coarse_cert_hits, 0, "margin gone: no coarse settle");
        assert_eq!(stats.cache_misses, 1, "fell through to the inner oracle");
    }

    #[test]
    fn certificates_off_by_default_and_droppable() {
        let c = CachingOracle::new(FullOracle::new());
        assert!(!c.certificates_enabled());
        let c = c.with_certificates(true);
        assert!(c.certificates_enabled());
        assert!(!c.with_certificates(false).certificates_enabled());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Replaying three epochs of small weight churn through a certified
        /// caching oracle must return exactly what a fresh FullOracle
        /// computes for every member — certificates may only skip work,
        /// never change a verdict. Exercises all three CertKinds plus
        /// generation rotation (epoch 3 can hit cur_gen or prev_gen).
        #[test]
        fn certified_verdicts_match_recompute_on_perturbed_weights(
            mut ws in proptest::collection::vec(1u64..10_000, 3..16),
            whale in 1u64..1_000_000,
            deltas in proptest::collection::vec((0u64..60, 0u64..2), 16),
            pn in 3u128..6,
        ) {
            ws[0] = ws[0].saturating_add(whale);
            let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(pn, 7)).unwrap();
            let mut cert = CachingOracle::new(FullOracle::new()).with_certificates(true);
            let mut fresh = FullOracle::new();
            let mut total_skips = 0u64;
            for epoch in 0..3 {
                if epoch > 0 {
                    for (w, &(d, sign)) in ws.iter_mut().zip(&deltas) {
                        // Alternate churn direction across epochs so both
                        // D⁺ and D⁻ margins get consumed cumulatively.
                        if (sign == 0) ^ (epoch == 2) {
                            *w -= d.min(*w - 1);
                        } else {
                            *w += d;
                        }
                    }
                }
                let w = Weights::new(ws.clone()).unwrap();
                let params = CheckParams::restriction(&w, &p).unwrap();
                for total in 1u64..=10 {
                    let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
                    let t = fam.assignment_with_total(total).unwrap();
                    let member = member_for(&w, &t);
                    let expect = fresh.check(&member, &params).unwrap();
                    prop_assert_eq!(cert.check(&member, &params).unwrap(), expect);
                }
                total_skips += cert.take_stats().certificate_skips;
            }
            // Not asserted > 0 per instance (margins can legitimately run
            // out), but the counter must never appear in epoch 0 alone.
            prop_assert!(total_skips == 0 || total_skips <= 20);
        }

        /// Coarse-keyed lookups must never change a verdict: members
        /// presented at totals the store has never seen exactly may be
        /// settled from nearby entries, and every such settlement must
        /// match a fresh exact recompute — on the priming weights and on
        /// a churned sibling (which exercises prev_gen coarse hits, the
        /// warm-epoch shape at a million parties).
        #[test]
        fn coarse_certificate_hits_never_change_a_verdict(
            mut ws in proptest::collection::vec(1u64..10_000, 3..16),
            whale in 1u64..1_000_000,
            deltas in proptest::collection::vec((0u64..40, 0u64..2), 16),
            pn in 3u128..6,
        ) {
            ws[0] = ws[0].saturating_add(whale);
            let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(pn, 7)).unwrap();
            let mut cert = CachingOracle::new(FullOracle::new()).with_certificates(true);
            let mut fresh = FullOracle::new();
            // Prime the store at even totals only.
            {
                let w = Weights::new(ws.clone()).unwrap();
                let params = CheckParams::restriction(&w, &p).unwrap();
                for total in (2u64..=20).step_by(2) {
                    let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
                    let t = fam.assignment_with_total(total).unwrap();
                    cert.check(&member_for(&w, &t), &params).unwrap();
                }
            }
            let _ = cert.take_stats();
            // Present odd totals (never stored exactly) on the same
            // weights, then on a churned sibling.
            for churn in 0..2 {
                if churn == 1 {
                    for (w, &(d, sign)) in ws.iter_mut().zip(&deltas) {
                        if sign == 0 {
                            *w -= d.min(*w - 1);
                        } else {
                            *w += d;
                        }
                    }
                }
                let w = Weights::new(ws.clone()).unwrap();
                let params = CheckParams::restriction(&w, &p).unwrap();
                for total in (1u64..=21).step_by(2) {
                    let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
                    let t = fam.assignment_with_total(total).unwrap();
                    let member = member_for(&w, &t);
                    let expect = fresh.check(&member, &params).unwrap();
                    prop_assert_eq!(cert.check(&member, &params).unwrap(), expect);
                }
                let stats = cert.take_stats();
                if churn == 0 {
                    // Distinct odd totals within one generation can only
                    // settle through the coarse pass, never an exact key.
                    prop_assert_eq!(stats.certificate_skips, 0);
                }
            }
        }
    }
}
