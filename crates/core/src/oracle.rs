//! Pluggable validity oracles for the Swiper solver.
//!
//! The solver's binary search (paper, Section 3) needs exactly one
//! judgement per candidate family member: *is this assignment valid for
//! the problem instance?* This module isolates that judgement behind the
//! [`ValidityOracle`] trait so checking regimes can be swapped without
//! touching the search — the seam that later enables verdict caching,
//! incremental re-solve on weight deltas and data-parallel sweeps.
//!
//! Two implementations mirror the prototype's modes:
//!
//! * [`FullOracle`] — the three-valued quick test (quasilinear bounds)
//!   with the exact `O(n·T)` knapsack DP only on "uncertain" verdicts.
//!   Scratch state (the ratio-sorted prefix sums of
//!   [`knapsack::SortedItems`], the DP table, the item buffer) is
//!   memoized across [`ValidityOracle::check`] calls instead of being
//!   rebuilt per candidate.
//! * [`LinearOracle`] — only the conservative (fractional upper) bound:
//!   never falsely accepts, so solutions remain valid, but may settle for
//!   more tickets. `~O(n log n)` per check, no DP ever.
//!
//! Both produce *identical verdicts* to the pre-oracle cascade in
//! `solver.rs`; the oracle-equivalence proptests in this module's tests and
//! in `solver.rs` pin that down.

use crate::assignment::TicketAssignment;
use crate::error::CoreError;
use crate::knapsack::{self, Item, SortedItems};
use crate::problems::{WeightRestriction, WeightSeparation};
use crate::ratio::Ratio;
use crate::solver::SolveStats;
use crate::verify::{strict_capacity, ticket_target};
use crate::weights::Weights;

/// An oracle's judgement of one family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The assignment satisfies the problem's property.
    Valid,
    /// The assignment violates the property (or the oracle cannot certify
    /// it — conservative oracles treat "unknown" as invalid).
    Invalid,
}

/// One candidate of the `t(s, k)` family, as presented to an oracle.
#[derive(Debug, Clone, Copy)]
pub struct FamilyMember<'a> {
    /// The instance's party weights.
    pub weights: &'a Weights,
    /// The candidate ticket assignment.
    pub tickets: &'a TicketAssignment,
    /// Total tickets of the candidate (`tickets.total()`, pre-narrowed).
    pub total: u64,
}

/// Problem-shape parameters of a validity check, fixed for a whole solve.
///
/// Weight Qualification reduces to Weight Restriction (Theorem 2.2), so two
/// shapes cover all three problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckParams {
    /// Weight Restriction: no subset under `capacity` total weight may
    /// reach `ceil(alpha_n * T)` tickets.
    Restriction {
        /// Largest subset weight strictly below `alpha_w * W`.
        capacity: u128,
        /// Ticket-fraction threshold; the per-candidate target is
        /// `ceil(alpha_n * total)`.
        alpha_n: Ratio,
    },
    /// Weight Separation: max tickets under `cap_low` plus max tickets
    /// under `cap_high` must stay below the candidate total.
    Separation {
        /// Largest subset weight strictly below `alpha * W`.
        cap_low: u128,
        /// Largest subset weight strictly below `(1 - beta) * W`.
        cap_high: u128,
    },
}

impl CheckParams {
    /// Check parameters for a Weight Restriction instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computation.
    pub fn restriction(
        weights: &Weights,
        params: &WeightRestriction,
    ) -> Result<Self, CoreError> {
        Ok(CheckParams::Restriction {
            capacity: strict_capacity(params.alpha_w(), weights.total())?,
            alpha_n: params.alpha_n(),
        })
    }

    /// Check parameters for a Weight Separation instance.
    ///
    /// # Errors
    ///
    /// Propagates arithmetic-envelope errors from the capacity computations.
    pub fn separation(weights: &Weights, params: &WeightSeparation) -> Result<Self, CoreError> {
        Ok(CheckParams::Separation {
            cap_low: strict_capacity(params.alpha(), weights.total())?,
            cap_high: strict_capacity(params.beta().one_minus()?, weights.total())?,
        })
    }
}

/// A validity-checking regime the solver's binary search drives.
///
/// # Contract
///
/// * `check` must never return [`Verdict::Valid`] for an invalid member
///   (soundness); returning [`Verdict::Invalid`] for a valid member is
///   allowed (conservatism) **as long as** the theoretical-bound member is
///   still judged valid, or the search's bootstrapping fallback would break.
///   Exact oracles additionally make the search land on a local minimum.
/// * Verdicts must be monotone in the family order for exact oracles:
///   the searched predicate "member with total `T` is valid" flips from
///   false to true exactly once.
/// * `take_stats` returns the counters accumulated since the previous call
///   and resets them; the search drains once per solve (on errors too), so
///   a shared oracle instance yields per-solve stats for free. Oracles
///   report only how checks were *settled* (`settled_by_*`,
///   `dp_invocations`); the search-shaped counters (`candidates_checked`,
///   `settled_by_theorem`) are owned and filled by the driver.
pub trait ValidityOracle {
    /// Judges one family member under the given check parameters.
    ///
    /// # Errors
    ///
    /// Implementations propagate arithmetic-envelope errors.
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError>;

    /// Drains the counters accumulated since the last call.
    fn take_stats(&mut self) -> SolveStats;
}

/// Shared per-candidate preparation: the knapsack item view of a member.
fn fill_items(buf: &mut Vec<Item>, member: &FamilyMember<'_>) {
    buf.clear();
    buf.extend(
        member
            .weights
            .as_slice()
            .iter()
            .zip(member.tickets.as_slice())
            .map(|(&weight, &profit)| Item { profit, weight }),
    );
}

/// The per-candidate ticket target for a Restriction-shaped check, already
/// compared against `total`: `None` means the target exceeds the total and
/// the member is trivially valid.
fn restriction_target(alpha_n: Ratio, total: u64) -> Result<Option<u64>, CoreError> {
    let target = ticket_target(alpha_n, u128::from(total))?;
    if target > u128::from(total) {
        return Ok(None);
    }
    Ok(Some(u64::try_from(target).map_err(|_| CoreError::ArithmeticOverflow)?))
}

/// Exact oracle: quick test first, the knapsack DP only on "uncertain".
///
/// Memoizes its working state across checks — the item buffer, the
/// ratio-sorted prefix sums ([`SortedItems`]) and the DP table
/// ([`knapsack::DpScratch`]) are allocated once per oracle and recycled
/// through the entire binary search (and, via [`crate::Swiper::solve_many`],
/// across instances of a sweep).
#[derive(Debug, Default, Clone)]
pub struct FullOracle {
    items: Vec<Item>,
    sorted: SortedItems,
    dp: knapsack::DpScratch,
    stats: SolveStats,
}

impl FullOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        FullOracle::default()
    }
}

impl ValidityOracle for FullOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        if member.total == 0 {
            return Ok(Verdict::Invalid);
        }
        fill_items(&mut self.items, member);
        self.sorted.rebuild(&self.items);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok(Verdict::Valid);
                };
                // Conservative bound: certainly-unreachable target means valid.
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                if self.sorted.greedy_lower_bound_reaches(capacity, target) {
                    self.stats.settled_by_lower_bound += 1;
                    return Ok(Verdict::Invalid);
                }
                self.stats.dp_invocations += 1;
                let reached =
                    knapsack::max_profit_dp_with(&mut self.dp, &self.items, capacity, target)
                        >= target;
                Ok(if reached { Verdict::Invalid } else { Verdict::Valid })
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let total = u128::from(member.total);
                // Conservative: floor(LP bound) on both sides still summing
                // below total certifies validity (a + b < T <=> max-light <
                // min-heavy).
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < total {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                let a_lb = self.sorted.greedy_lower_bound(cap_low);
                let b_lb = self.sorted.greedy_lower_bound(cap_high);
                if a_lb + b_lb >= total {
                    self.stats.settled_by_lower_bound += 1;
                    return Ok(Verdict::Invalid);
                }
                self.stats.dp_invocations += 1;
                let a = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_low,
                    member.total,
                ));
                let b = u128::from(knapsack::max_profit_dp_with(
                    &mut self.dp,
                    &self.items,
                    cap_high,
                    member.total,
                ));
                Ok(if a + b < total { Verdict::Valid } else { Verdict::Invalid })
            }
        }
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

/// Conservative oracle: the fractional upper bound only (the prototype's
/// `--linear` flag). Never falsely accepts, never runs the DP.
#[derive(Debug, Default, Clone)]
pub struct LinearOracle {
    items: Vec<Item>,
    sorted: SortedItems,
    stats: SolveStats,
}

impl LinearOracle {
    /// A fresh oracle with empty scratch.
    #[must_use]
    pub fn new() -> Self {
        LinearOracle::default()
    }
}

impl ValidityOracle for LinearOracle {
    fn check(
        &mut self,
        member: &FamilyMember<'_>,
        params: &CheckParams,
    ) -> Result<Verdict, CoreError> {
        if member.total == 0 {
            return Ok(Verdict::Invalid);
        }
        fill_items(&mut self.items, member);
        self.sorted.rebuild(&self.items);
        match *params {
            CheckParams::Restriction { capacity, alpha_n } => {
                let Some(target) = restriction_target(alpha_n, member.total)? else {
                    return Ok(Verdict::Valid);
                };
                if !self.sorted.fractional_upper_bound_reaches(capacity, target) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                // Only the conservative test is allowed: treat as invalid.
                Ok(Verdict::Invalid)
            }
            CheckParams::Separation { cap_low, cap_high } => {
                let a_ub = self.sorted.fractional_upper_bound_floor(cap_low);
                let b_ub = self.sorted.fractional_upper_bound_floor(cap_high);
                if a_ub + b_ub < u128::from(member.total) {
                    self.stats.settled_by_upper_bound += 1;
                    return Ok(Verdict::Valid);
                }
                Ok(Verdict::Invalid)
            }
        }
    }

    fn take_stats(&mut self) -> SolveStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::WeightRestriction;

    fn member_for<'a>(weights: &'a Weights, tickets: &'a TicketAssignment) -> FamilyMember<'a> {
        let total = u64::try_from(tickets.total()).unwrap();
        FamilyMember { weights, tickets, total }
    }

    #[test]
    fn zero_total_is_invalid_for_both_oracles() {
        let w = Weights::new(vec![5, 3, 2]).unwrap();
        let t = TicketAssignment::new(vec![0, 0, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let member = member_for(&w, &t);
        assert_eq!(FullOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
        assert_eq!(LinearOracle::new().check(&member, &params).unwrap(), Verdict::Invalid);
    }

    #[test]
    fn linear_never_accepts_what_full_rejects() {
        // Conservatism: Linear's Valid verdicts are a subset of Full's.
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut full = FullOracle::new();
        let mut linear = LinearOracle::new();
        for total in 1u64..=12 {
            let fam = crate::family::Family::new(&w, p.family_constant(), total).unwrap();
            let t = fam.assignment_with_total(total).unwrap();
            let member = member_for(&w, &t);
            let fv = full.check(&member, &params).unwrap();
            let lv = linear.check(&member, &params).unwrap();
            if lv == Verdict::Valid {
                assert_eq!(fv, Verdict::Valid, "linear accepted what full rejects at {total}");
            }
        }
    }

    #[test]
    fn take_stats_drains() {
        let w = Weights::new(vec![40, 25, 20, 10, 5]).unwrap();
        let t = TicketAssignment::new(vec![2, 1, 1, 1, 0]);
        let p = WeightRestriction::new(Ratio::of(1, 3), Ratio::of(1, 2)).unwrap();
        let params = CheckParams::restriction(&w, &p).unwrap();
        let mut oracle = FullOracle::new();
        oracle.check(&member_for(&w, &t), &params).unwrap();
        let stats = oracle.take_stats();
        // The driver owns candidates_checked; the oracle reports only how
        // the check was settled.
        assert_eq!(stats.candidates_checked, 0);
        let settled =
            stats.settled_by_upper_bound + stats.settled_by_lower_bound + stats.dp_invocations;
        assert_eq!(settled, 1);
        assert_eq!(oracle.take_stats(), SolveStats::default());
    }
}
